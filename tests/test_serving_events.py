"""EventLog durability contracts: replay, torn tails, corruption, sealing.

The recovery semantics under test distinguish the two failure modes a
write-ahead log must tell apart: a torn tail (expected — the crash cut
the final record short; the event never committed) is silently dropped,
while interior corruption or a log shorter than its sealed manifest
(data loss) raises :class:`~repro.exceptions.DataError` loudly.
"""

from __future__ import annotations

import json

import pytest

from repro.exceptions import DataError
from repro.resilience.faults import FaultInjected, FaultInjector
from repro.serving.events import (
    EVENT_LOG_VERSION,
    Event,
    EventLog,
    _parse_line,
    _payload_crc,
    scan_events,
)


@pytest.fixture()
def log_path(tmp_path):
    return tmp_path / "events.log"


class TestRecordFormat:
    def test_line_round_trip(self) -> None:
        event = Event(seq=17, user=3, item=42)
        line = event.to_line()
        assert line.endswith("\n")
        record = json.loads(line)
        assert record == {
            "seq": 17,
            "user": 3,
            "item": 42,
            "crc": _payload_crc(17, 3, 42),
        }
        assert _parse_line(line.rstrip("\n")) == event

    def test_parse_rejects_bad_crc(self) -> None:
        line = Event(seq=0, user=1, item=2).to_line().rstrip("\n")
        tampered = line.replace('"item":2', '"item":3')
        assert _parse_line(tampered) is None

    def test_parse_rejects_garbage(self) -> None:
        assert _parse_line("not json") is None
        assert _parse_line('{"seq": 1}') is None
        assert _parse_line("") is None


class TestAppendReplay:
    def test_append_assigns_contiguous_seq(self, log_path) -> None:
        with EventLog.open(log_path) as log:
            events = [log.append(user, item) for user, item in
                      [(0, 5), (1, 7), (0, 5), (2, 9)]]
        assert [event.seq for event in events] == [0, 1, 2, 3]

    def test_reopen_replays_everything(self, log_path) -> None:
        stream = [(0, 5), (1, 7), (0, 6), (1, 7), (0, 5)]
        with EventLog.open(log_path) as log:
            for user, item in stream:
                log.append(user, item)
        reopened = EventLog.open(log_path)
        assert len(reopened) == len(stream)
        assert [(e.user, e.item) for e in reopened.iter_events()] == stream
        assert reopened.events_for(0) == [5, 6, 5]
        assert reopened.events_for(1) == [7, 7]
        assert reopened.events_for(99) == []
        assert reopened.users() == [0, 1]
        # Appends continue the sequence.
        assert reopened.append(3, 1).seq == len(stream)
        reopened.close()

    def test_validation(self, log_path) -> None:
        log = EventLog.open(log_path)
        with pytest.raises(DataError, match="non-negative"):
            log.append(-1, 0)
        with pytest.raises(DataError, match="non-negative"):
            log.append(0, -1)
        log.close()
        with pytest.raises(DataError, match="not open"):
            log.append(0, 0)
        with pytest.raises(DataError, match="fsync_every"):
            EventLog(log_path, fsync_every=0)

    def test_fsync_batching_still_commits(self, log_path) -> None:
        with EventLog.open(log_path, fsync_every=10) as log:
            for item in range(5):
                log.append(0, item)
        assert EventLog.open(log_path).events_for(0) == [0, 1, 2, 3, 4]


class TestTornTail:
    def write_committed(self, log_path, n=3) -> None:
        with EventLog.open(log_path) as log:
            for item in range(n):
                log.append(0, item)

    def test_truncated_final_record_discarded(self, log_path) -> None:
        self.write_committed(log_path)
        log_path.with_name(log_path.name + ".manifest.json").unlink()
        with log_path.open("a", encoding="utf-8") as handle:
            handle.write('{"seq":3,"user":0,"it')  # cut mid-write, no \n
        log = EventLog.open(log_path)
        assert len(log) == 3
        assert log.n_discarded_tail == 1
        # Recovery truncated the torn bytes: appends restart cleanly.
        event = log.append(0, 99)
        assert event.seq == 3
        log.close()
        assert EventLog.open(log_path).events_for(0) == [0, 1, 2, 99]

    def test_corrupt_final_complete_line_discarded(self, log_path) -> None:
        """The newline made it out but the payload tore: still a tail."""
        self.write_committed(log_path)
        log_path.with_name(log_path.name + ".manifest.json").unlink()
        with log_path.open("a", encoding="utf-8") as handle:
            handle.write('{"seq":3,"user":0,"item":1,"crc":"00000000"}\n')
        log = EventLog.open(log_path)
        assert len(log) == 3
        assert log.n_discarded_tail == 1

    def test_readonly_does_not_truncate_or_seal(self, log_path) -> None:
        self.write_committed(log_path)
        manifest = log_path.with_name(log_path.name + ".manifest.json")
        manifest.unlink()
        with log_path.open("a", encoding="utf-8") as handle:
            handle.write('{"torn')
        size_before = log_path.stat().st_size
        log = EventLog.open(log_path, readonly=True)
        assert len(log) == 3
        assert log.n_discarded_tail == 1
        log.close()
        assert log_path.stat().st_size == size_before  # bytes untouched
        assert not manifest.exists()  # no seal written
        with pytest.raises(DataError, match="not open"):
            log.append(0, 0)


class TestInteriorCorruption:
    def test_bad_record_before_valid_ones_raises(self, log_path) -> None:
        lines = [Event(seq=i, user=0, item=i).to_line() for i in range(3)]
        lines[1] = '{"seq":1,"user":0,"item":1,"crc":"deadbeef"}\n'
        log_path.write_text("".join(lines))
        with pytest.raises(DataError, match="corrupt event record"):
            EventLog.open(log_path)

    def test_non_contiguous_seq_raises(self, log_path) -> None:
        lines = [
            Event(seq=0, user=0, item=1).to_line(),
            Event(seq=2, user=0, item=2).to_line(),  # 1 is missing
        ]
        log_path.write_text("".join(lines))
        with pytest.raises(DataError, match="non-contiguous"):
            EventLog.open(log_path)


class TestManifest:
    def test_seal_records_length(self, log_path) -> None:
        with EventLog.open(log_path) as log:
            for item in range(4):
                log.append(1, item)
        manifest = json.loads(
            log_path.with_name(log_path.name + ".manifest.json").read_text()
        )
        assert manifest["version"] == EVENT_LOG_VERSION
        assert manifest["n_records"] == 4
        assert manifest["log"] == log_path.name

    def test_log_shorter_than_seal_raises(self, log_path) -> None:
        with EventLog.open(log_path) as log:
            for item in range(4):
                log.append(1, item)
        # Lose a committed record behind the manifest's back.
        lines = log_path.read_text().splitlines(keepends=True)
        log_path.write_text("".join(lines[:-1]))
        with pytest.raises(DataError, match="committed events were lost"):
            EventLog.open(log_path)

    def test_unsupported_version_raises(self, log_path) -> None:
        EventLog.open(log_path).close()
        manifest = log_path.with_name(log_path.name + ".manifest.json")
        manifest.write_text(json.dumps({"version": 99, "n_records": 0}))
        with pytest.raises(DataError, match="unsupported event-log version"):
            EventLog.open(log_path)

    def test_corrupt_manifest_raises(self, log_path) -> None:
        EventLog.open(log_path).close()
        manifest = log_path.with_name(log_path.name + ".manifest.json")
        manifest.write_text("{not json")
        with pytest.raises(DataError, match="corrupt event-log manifest"):
            EventLog.open(log_path)


class TestFsyncPolicy:
    def test_rejects_unknown_policy(self, log_path) -> None:
        with pytest.raises(DataError, match="fsync_policy"):
            EventLog.open(log_path, fsync_policy="sometimes")

    def test_back_compat_mapping(self, log_path) -> None:
        assert EventLog.open(log_path).fsync_policy == "always"
        assert (
            EventLog.open(log_path, fsync_every=8).fsync_policy == "interval"
        )

    @pytest.mark.parametrize("policy", ["always", "interval", "never"])
    def test_every_policy_commits_through_clean_close(
        self, log_path, policy
    ) -> None:
        with EventLog.open(
            log_path, fsync_policy=policy, fsync_every=10
        ) as log:
            for item in range(5):
                log.append(0, item)
        assert EventLog.open(log_path).events_for(0) == [0, 1, 2, 3, 4]

    def test_always_survives_kill_at_every_append_boundary(
        self, tmp_path
    ) -> None:
        """With ``"always"``, every append that returned is recoverable.

        Sweep the kill over *every* append boundary: crash the K-th
        write, then replay — exactly the K-1 acknowledged events must
        come back, never fewer (durability) and never the dying one
        (write-ahead atomicity).
        """
        n_events = 8
        for crash_at in range(1, n_events + 1):
            path = tmp_path / f"boundary{crash_at}.log"
            injector = FaultInjector(crash_on_write=crash_at)
            log = EventLog.open(
                path, fault_injector=injector, fsync_policy="always"
            )
            acknowledged = []
            with pytest.raises(FaultInjected):
                for item in range(n_events):
                    log.append(7, item)
                    acknowledged.append(item)
            # No clean close: this is the crash. Replay from disk.
            recovered = EventLog.open(path)
            assert recovered.events_for(7) == acknowledged
            assert len(acknowledged) == crash_at - 1
            recovered.close()


class TestFaultInjection:
    def test_crash_on_write_commits_nothing(self, log_path) -> None:
        """The fault fires before the write: the event must not appear."""
        injector = FaultInjector(crash_on_write=3)
        log = EventLog.open(log_path, fault_injector=injector)
        committed = []
        with pytest.raises(FaultInjected):
            for item in range(10):
                log.append(0, item)
                committed.append(item)
        assert committed == [0, 1]  # third write died
        # Simulated restart: only the committed prefix replays.
        assert EventLog.open(log_path).events_for(0) == [0, 1]

    def test_deterministic_injection_point(self, log_path) -> None:
        for attempt in range(2):
            path = log_path.with_name(f"attempt{attempt}.log")
            injector = FaultInjector(crash_on_write=5)
            log = EventLog.open(path, fault_injector=injector)
            n = 0
            with pytest.raises(FaultInjected):
                while True:
                    log.append(0, n)
                    n += 1
            assert n == 4


class TestEventTimestamps:
    def test_append_stamps_wall_clock(self, log_path) -> None:
        with EventLog.open(log_path) as log:
            events = [log.append(0, item) for item in range(3)]
        assert all(isinstance(e.ts, float) for e in events)
        assert events[0].ts <= events[1].ts <= events[2].ts

    def test_ts_round_trips_exactly(self) -> None:
        event = Event(seq=5, user=1, item=9, ts=1786159794.7334421)
        record = json.loads(event.to_line())
        assert record["ts"] == 1786159794.7334421
        assert record["crc"] == _payload_crc(5, 1, 9, 1786159794.7334421)
        assert _parse_line(event.to_line().rstrip("\n")) == event

    def test_crc_covers_ts(self) -> None:
        line = Event(seq=0, user=1, item=2, ts=3.5).to_line().rstrip("\n")
        tampered = line.replace('"ts":3.5', '"ts":4.5')
        assert tampered != line
        assert _parse_line(tampered) is None

    def test_legacy_record_without_ts_still_parses(self) -> None:
        line = json.dumps(
            {"seq": 0, "user": 1, "item": 2, "crc": _payload_crc(0, 1, 2)}
        )
        event = _parse_line(line)
        assert event == Event(seq=0, user=1, item=2)
        assert event.ts is None

    def test_reopen_preserves_timestamps(self, log_path) -> None:
        with EventLog.open(log_path) as log:
            written = [log.append(0, item) for item in range(4)]
        replayed = list(EventLog.open(log_path, readonly=True).iter_events())
        assert [e.ts for e in replayed] == [e.ts for e in written]


class TestScanEvents:
    """Readonly inspection without loading segments into memory."""

    def write_log(self, log_path, n=5, seal=True):
        log = EventLog.open(log_path)
        written = [log.append(item % 2, item) for item in range(n)]
        if seal:
            log.close()
        return written

    def test_streams_exactly_the_committed_events(self, log_path) -> None:
        written = self.write_log(log_path)
        scanned = list(scan_events(log_path))
        assert scanned == written

    def test_is_lazy(self, log_path) -> None:
        self.write_log(log_path, n=10)
        stream = scan_events(log_path)
        assert iter(stream) is stream  # a generator, not a list
        first = next(stream)
        assert (first.seq, first.user, first.item) == (0, 0, 0)

    def test_missing_file_yields_nothing(self, tmp_path) -> None:
        assert list(scan_events(tmp_path / "absent.log")) == []

    def test_torn_tail_ends_stream_silently(self, log_path) -> None:
        self.write_log(log_path, n=3, seal=False)
        with log_path.open("a", encoding="utf-8") as handle:
            handle.write('{"seq":3,"user":0,"it')
        assert [e.seq for e in scan_events(log_path)] == [0, 1, 2]

    def test_corrupt_final_complete_line_ends_stream(self, log_path) -> None:
        self.write_log(log_path, n=3, seal=False)
        with log_path.open("a", encoding="utf-8") as handle:
            handle.write('{"seq":3,"user":0,"item":1,"crc":"00000000"}\n')
        assert [e.seq for e in scan_events(log_path)] == [0, 1, 2]

    def test_interior_corruption_raises(self, log_path) -> None:
        self.write_log(log_path, n=4, seal=False)
        lines = log_path.read_text().splitlines()
        lines[1] = '{"seq":1,"user":0,"item":1,"crc":"00000000"}'
        log_path.write_text("\n".join(lines) + "\n")
        with pytest.raises(DataError, match="corrupt event record"):
            list(scan_events(log_path))

    def test_seq_gap_raises(self, log_path) -> None:
        self.write_log(log_path, n=4, seal=False)
        lines = log_path.read_text().splitlines()
        del lines[1]
        log_path.write_text("\n".join(lines) + "\n")
        with pytest.raises(DataError, match="non-contiguous"):
            list(scan_events(log_path))

    def test_sealed_shortfall_raises(self, log_path) -> None:
        self.write_log(log_path, n=4, seal=True)
        lines = log_path.read_text().splitlines()
        log_path.write_text("\n".join(lines[:2]) + "\n")
        with pytest.raises(DataError, match="sealed|seals"):
            list(scan_events(log_path))

    def test_matches_eventlog_open(self, log_path) -> None:
        self.write_log(log_path, n=6)
        assert list(scan_events(log_path)) == list(
            EventLog.open(log_path, readonly=True).iter_events()
        )
