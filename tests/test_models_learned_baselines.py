"""Tests for PPR, FPMC, DYRC, Survival, and STREC."""

import numpy as np
import pytest

from repro.config import TSPPRConfig, WindowConfig
from repro.data.sequence import ConsumptionSequence
from repro.evaluation.protocol import evaluate_recommender
from repro.exceptions import NotFittedError
from repro.models.dyrc import DYRCRecommender, recency_ranks
from repro.models.fpmc import FPMCRecommender
from repro.models.ppr import PPRRecommender
from repro.models.random_rec import RandomRecommender
from repro.models.strec import STRECClassifier
from repro.models.survival import SurvivalRecommender
from repro.windows.window import window_before

SMOKE = TSPPRConfig(max_epochs=8000, seed=3)


class TestPPR:
    def test_fit_and_score(self, gowalla_split):
        model = PPRRecommender(SMOKE).fit(gowalla_split)
        assert model.user_factors_.shape[0] == gowalla_split.n_users
        sequence = gowalla_split.full_sequence(0)
        t = gowalla_split.train_boundary(0) + 2
        candidates = sorted(set(sequence.items[:t].tolist()))[:10]
        scores = model.score(sequence, candidates, t)
        assert scores.shape == (len(candidates),)
        assert np.all(np.isfinite(scores))

    def test_score_is_time_invariant(self, gowalla_split):
        """PPR's defining limitation: the same (u, v) scores identically
        at every t — which is exactly why it cannot solve RRC."""
        model = PPRRecommender(SMOKE).fit(gowalla_split)
        sequence = gowalla_split.full_sequence(0)
        boundary = gowalla_split.train_boundary(0)
        candidates = sorted(set(sequence.items[:boundary].tolist()))[:5]
        early = model.score(sequence, candidates, boundary + 1)
        late = model.score(sequence, candidates, boundary + 40)
        assert np.allclose(early, late)

    def test_margin_grows(self, gowalla_split):
        model = PPRRecommender(SMOKE).fit(gowalla_split)
        history = model.sgd_result_.margin_history
        assert history[-1][1] > history[0][1]


class TestFPMC:
    def test_fit_and_evaluate(self, gowalla_split):
        model = FPMCRecommender(SMOKE).fit(gowalla_split)
        result = evaluate_recommender(model, gowalla_split)
        assert 0.0 <= result.maap[10] <= 1.0

    def test_mc_term_only_by_default(self, gowalla_split):
        model = FPMCRecommender(SMOKE).fit(gowalla_split)
        assert not model.use_user_term
        # With the MC term only, scores do not depend on who the user is,
        # only on the window contents.
        sequence = gowalla_split.full_sequence(0)
        t = gowalla_split.train_boundary(0) + 1
        candidates = sorted(set(sequence.items[:t].tolist()))[:5]
        scores = model.score(sequence, candidates, t)
        relabeled = ConsumptionSequence(1, sequence.items)
        assert np.allclose(scores, model.score(relabeled, candidates, t))

    def test_user_term_variant(self, gowalla_split):
        model = FPMCRecommender(SMOKE, use_user_term=True).fit(gowalla_split)
        sequence = gowalla_split.full_sequence(0)
        t = gowalla_split.train_boundary(0) + 1
        candidates = sorted(set(sequence.items[:t].tolist()))[:5]
        scores = model.score(sequence, candidates, t)
        relabeled = ConsumptionSequence(1, sequence.items)
        assert not np.allclose(scores, model.score(relabeled, candidates, t))

    def test_scores_depend_on_window(self, gowalla_split):
        model = FPMCRecommender(SMOKE).fit(gowalla_split)
        sequence = gowalla_split.full_sequence(0)
        boundary = gowalla_split.train_boundary(0)
        candidates = sorted(set(sequence.items[:boundary].tolist()))[:5]
        early = model.score(sequence, candidates, boundary - 50)
        late = model.score(sequence, candidates, boundary + 40)
        assert not np.allclose(early, late)


class TestDYRC:
    def test_recency_ranks(self):
        sequence = ConsumptionSequence(0, [1, 2, 3, 2])
        window = window_before(sequence, 4, 10)
        ranks = recency_ranks(window, [2, 3, 1, 99])
        # Last occurrences: 2@3, 3@2, 1@0 -> ranks 1, 2, 3; absent -> 4.
        assert ranks.tolist() == [1, 2, 3, 4]

    def test_fit_learns_positive_quality_weight(self, gowalla_split):
        model = DYRCRecommender(n_iterations=120).fit(gowalla_split)
        # The Gowalla-like generator reconsumes high-quality items more.
        assert model.quality_weight_ > 0
        assert len(model.log_likelihood_path_) > 0
        # The likelihood must improve over training.
        assert model.log_likelihood_path_[-1] > model.log_likelihood_path_[0]

    def test_beats_random(self, gowalla_split):
        dyrc = evaluate_recommender(
            DYRCRecommender(n_iterations=120).fit(gowalla_split), gowalla_split
        )
        random_result = evaluate_recommender(
            RandomRecommender(random_state=0).fit(gowalla_split), gowalla_split
        )
        assert dyrc.maap[10] > random_result.maap[10]

    def test_validation(self):
        with pytest.raises(Exception):
            DYRCRecommender(learning_rate=0)
        with pytest.raises(Exception):
            DYRCRecommender(n_iterations=0)


class TestSurvivalRecommender:
    def test_fit_and_evaluate(self, gowalla_split):
        model = SurvivalRecommender().fit(gowalla_split)
        result = evaluate_recommender(model, gowalla_split)
        assert 0.0 <= result.maap[10] <= 1.0

    def test_mode_validation(self):
        with pytest.raises(ValueError, match="mode"):
            SurvivalRecommender(mode="bogus")

    def test_hazard_mode_scores_in_unit_interval(self, gowalla_split):
        model = SurvivalRecommender(mode="hazard").fit(gowalla_split)
        sequence = gowalla_split.full_sequence(0)
        t = gowalla_split.train_boundary(0) + 2
        candidates = sorted(set(sequence.items[:t].tolist()))[:10]
        scores = model.score(sequence, candidates, t)
        assert np.all((0 <= scores) & (scores <= 1))

    def test_due_mode_prefers_due_items(self, gowalla_split):
        """An item whose elapsed gap matches its expected return time
        must outscore the same item queried far past its due point."""
        model = SurvivalRecommender().fit(gowalla_split)
        # Item 0 consumed with regular gap 5, last seen 5 steps ago (due)
        # versus last seen 40 steps ago (overdue).
        due = ConsumptionSequence(0, [0, 1, 2, 3, 4] * 8)
        overdue = ConsumptionSequence(0, ([0] + [1, 2, 3, 4] * 10)[:45])
        due_score = model.score(due, [0], 40)[0]
        overdue_score = model.score(overdue, [0], 41)[0]
        assert due_score > overdue_score


class TestSTREC:
    def test_fit_and_evaluate(self, gowalla_split):
        model = STRECClassifier().fit(gowalla_split)
        evaluation = model.evaluate(gowalla_split)
        assert 0.0 <= evaluation.accuracy <= 1.0
        assert evaluation.n_positions > 0
        assert 0.0 <= evaluation.repeat_base_rate <= 1.0

    def test_beats_chance_against_base_rate(self, gowalla_split):
        model = STRECClassifier().fit(gowalla_split)
        evaluation = model.evaluate(gowalla_split)
        majority = max(
            evaluation.repeat_base_rate, 1 - evaluation.repeat_base_rate
        )
        # The switch should at least match the majority-class strategy.
        assert evaluation.accuracy >= majority - 0.02

    def test_predict_position(self, gowalla_split):
        model = STRECClassifier().fit(gowalla_split)
        sequence = gowalla_split.full_sequence(0)
        prediction = model.predict_position(sequence, len(sequence) - 1)
        assert isinstance(prediction, bool)

    def test_coefficients_exposed(self, gowalla_split):
        model = STRECClassifier().fit(gowalla_split)
        assert model.coefficients.shape == (4,)

    def test_unfitted_raises(self, gowalla_split):
        with pytest.raises(NotFittedError):
            STRECClassifier().evaluate(gowalla_split)
        with pytest.raises(NotFittedError):
            STRECClassifier().coefficients
