"""Tests for repro.rng."""

import numpy as np
import pytest

from repro.rng import DEFAULT_SEED, derive_seed, ensure_rng, spawn


class TestEnsureRng:
    def test_none_uses_default_seed(self):
        a = ensure_rng(None)
        b = ensure_rng(DEFAULT_SEED)
        assert a.random() == b.random()

    def test_int_seed_is_deterministic(self):
        assert ensure_rng(42).random() == ensure_rng(42).random()

    def test_generator_passes_through(self):
        generator = np.random.default_rng(1)
        assert ensure_rng(generator) is generator

    def test_rejects_other_types(self):
        with pytest.raises(TypeError, match="random_state"):
            ensure_rng("seed")  # type: ignore[arg-type]


class TestSpawn:
    def test_children_are_independent_and_deterministic(self):
        first = [g.random() for g in spawn(7, 3)]
        second = [g.random() for g in spawn(7, 3)]
        assert first == second
        assert len(set(first)) == 3  # distinct streams

    def test_zero_children(self):
        assert list(spawn(7, 0)) == []

    def test_negative_children_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            list(spawn(7, -1))

    def test_spawn_from_generator(self):
        generator = np.random.default_rng(3)
        children = list(spawn(generator, 2))
        assert len(children) == 2


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(5, 1, 2) == derive_seed(5, 1, 2)

    def test_salt_changes_seed(self):
        assert derive_seed(5, 1) != derive_seed(5, 2)

    def test_none_base_uses_default(self):
        assert derive_seed(None, 1) == derive_seed(DEFAULT_SEED, 1)

    def test_result_is_int(self):
        assert isinstance(derive_seed(5, 9), int)
