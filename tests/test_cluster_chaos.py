"""Chaos acceptance: 4 shards under live load survive a worker kill.

The bar (mirrors the CI ``chaos`` job, excluded from tier 1):

* sustained concurrent client load through the router — writes with
  idempotency seqs, reads with no special handling;
* a :class:`~repro.resilience.faults.ProcessFaultInjector` SIGKILL lands
  on a live worker mid-stream;
* the supervisor restarts the shard by WAL replay and only readmits it
  after proving bit-identical fingerprints (RUNNING + restart count is
  the observable proof — a mismatch parks the shard FAILED);
* **no client request errors**: reads during the outage may come back
  ``degraded`` (base-history Recency) and are counted; writes are held
  and retried by the router until the shard returns;
* afterwards, every user's state is exactly the acknowledged write
  stream — nothing lost, nothing double-applied by the retries — and
  fingerprints through the router match an independent readonly WAL
  replay.
"""

from __future__ import annotations

import threading
import time

import pytest

from conftest import SMALL_WINDOW

from repro.cluster import ClusterRouter, RUNNING, ShardSupervisor
from repro.data.split import temporal_split
from repro.models.recency import RecencyRecommender
from repro.resilience.faults import ProcessFaultInjector
from repro.serving import ServiceConfig, ServingClient
from repro.synth.gowalla import generate_gowalla

N_SHARDS = 4
ROUNDS = 12


@pytest.mark.chaos
class TestShardKillUnderLoad:
    @pytest.mark.parametrize("batching", ["inflight", "microbatch"])
    def test_kill_one_worker_mid_stream(self, tmp_path, batching) -> None:
        """SIGKILL lands mid-in-flight-batch (or mid-micro-batch).

        Requests admitted to the packed batch die with the worker; the
        supervisor must still restart the shard by WAL replay with
        bit-identical fingerprints, and the router must hide the whole
        episode from clients.
        """
        split = temporal_split(
            generate_gowalla(
                random_state=31, user_factor=0.5, length_factor=0.6
            )
        )
        users = list(range(split.n_users))
        model = RecencyRecommender().fit(split, SMALL_WINDOW)
        config = ServiceConfig(
            window=SMALL_WINDOW, n_items=split.n_items, batching=batching
        )
        supervisor = ShardSupervisor(
            split,
            model,
            config,
            n_shards=N_SHARDS,
            run_dir=tmp_path / "cluster",
            heartbeat_interval_s=0.1,
            heartbeat_timeout_s=0.5,
            max_missed_heartbeats=3,
        )
        supervisor.start()
        router = ClusterRouter(
            supervisor, port=0, event_retry_deadline_s=120.0
        ).start()
        try:
            self._run_load_with_kill(split, users, supervisor, router)
        finally:
            router.close()
            supervisor.close()

    def _run_load_with_kill(self, split, users, supervisor, router) -> None:
        errors = []
        acked = {user: [] for user in users}
        degraded_seen = threading.Event()
        lock = threading.Lock()
        degraded_count = [0]

        def load(user_group) -> None:
            # One writer client per thread: each user has exactly one
            # writer, which is the idempotency protocol's assumption.
            client = ServingClient(router.url, timeout=60.0)
            try:
                for round_no in range(ROUNDS):
                    for user in user_group:
                        item = (user * 7 + round_no) % split.n_items
                        client.ingest(user, item)
                        acked[user].append(item)
                        reply = client.recommend(user, k=5)
                        if reply["degraded"]:
                            degraded_seen.set()
                            with lock:
                                degraded_count[0] += 1
            except Exception as exc:  # noqa: BLE001 - the assertion target
                errors.append((user_group, repr(exc)))

        groups = [users[i::3] for i in range(3)]
        threads = [
            threading.Thread(target=load, args=(group,)) for group in groups
        ]
        for thread in threads:
            thread.start()

        # Let load build up, then SIGKILL the shard owning user 0 —
        # mid-stream, no warning, no log seal.
        time.sleep(0.6)
        victim = supervisor.ring.owner(users[0])
        injector = ProcessFaultInjector()
        injector.kill(supervisor.pid_of(victim))
        assert injector.kills, "the kill never landed"

        for thread in threads:
            thread.join(timeout=300.0)
        assert not any(thread.is_alive() for thread in threads)

        # Hard acceptance: zero client-visible errors under the kill.
        assert errors == [], f"client requests failed: {errors}"

        # The supervisor restarted the victim via WAL replay and only
        # readmitted it after the fingerprint check passed.
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if supervisor.states()[victim] == RUNNING:
                break
            time.sleep(0.1)
        assert supervisor.states()[victim] == RUNNING
        assert supervisor.restart_counts()[victim] >= 1

        # Degraded reads were served during the outage and counted.
        merged = ServingClient(router.url).metrics()
        router_counters = merged["router"]["counters"]
        if degraded_seen.is_set():
            assert degraded_count[0] > 0
            assert router_counters["degraded_answers"] == degraded_count[0]

        # Exactly-once effects: every user's live state is precisely its
        # acknowledged write stream — the retries neither lost nor
        # double-applied an event.
        verify = ServingClient(router.url, timeout=60.0)
        for user in users:
            state = verify.state(user)
            assert state["live_events"] == len(acked[user]), (
                f"user {user}: {state['live_events']} committed vs "
                f"{len(acked[user])} acknowledged"
            )

        # End-to-end bit-identity: fingerprints through the router match
        # an independent readonly replay of each shard's WAL.
        for shard in supervisor.shard_names():
            for user, expected in supervisor.expected_fingerprints(
                shard
            ).items():
                assert verify.state(user)["fingerprint"] == expected
