"""Tests for repro.resilience.checkpoint — snapshot, recovery, pruning."""

import json

import numpy as np
import pytest

from repro.exceptions import CheckpointError
from repro.resilience.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointManager,
    TrainingState,
)


def _state(n_updates=100, value=1.0, with_rng=True):
    rng_state = None
    if with_rng:
        rng_state = np.random.default_rng(5).bit_generator.state
    return TrainingState(
        n_updates=n_updates,
        converged=False,
        history=[(0, 0.1), (n_updates, 0.5)],
        streak=1,
        params={
            "user_factors": np.full((3, 2), value),
            "item_factors": np.arange(4.0),
        },
        rng_state=rng_state,
    )


class TestRoundTrip:
    def test_save_load_round_trip(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(_state(n_updates=123, value=2.5))
        loaded = CheckpointManager(tmp_path).load_latest()
        assert loaded is not None
        assert loaded.n_updates == 123
        assert loaded.converged is False
        assert loaded.history == [(0, 0.1), (123, 0.5)]
        assert loaded.streak == 1
        assert np.array_equal(
            loaded.params["user_factors"], np.full((3, 2), 2.5)
        )
        assert np.array_equal(loaded.params["item_factors"], np.arange(4.0))

    def test_rng_state_round_trips_exactly(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        rng = np.random.default_rng(42)
        rng.integers(1000, size=17)  # advance the stream
        state = _state()
        state.rng_state = rng.bit_generator.state
        manager.save(state)
        loaded = CheckpointManager(tmp_path).load_latest()
        restored = np.random.default_rng(0)
        restored.bit_generator.state = loaded.rng_state
        assert np.array_equal(
            restored.integers(1000, size=50), rng.integers(1000, size=50)
        )

    def test_empty_directory_loads_none(self, tmp_path):
        assert CheckpointManager(tmp_path).load_latest() is None

    def test_latest_snapshot_wins(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(_state(n_updates=10))
        manager.save(_state(n_updates=20))
        assert CheckpointManager(tmp_path).load_latest().n_updates == 20


class TestCadenceAndPruning:
    def test_maybe_save_cadence(self, tmp_path):
        manager = CheckpointManager(tmp_path, every_n_checks=3, keep=100)
        saved = [
            manager.maybe_save(lambda: _state(n)) is not None for n in range(7)
        ]
        # Check 1 always saves, then every third after it.
        assert saved == [True, False, False, True, False, False, True]

    def test_prune_keeps_newest(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=2)
        for n_updates in (10, 20, 30, 40):
            manager.save(_state(n_updates=n_updates))
        manifests = sorted(tmp_path.glob("ckpt-*.json"))
        assert len(manifests) == 2
        assert len(list(tmp_path.glob("ckpt-*.npz"))) == 2
        assert CheckpointManager(tmp_path).load_latest().n_updates == 40

    def test_sequence_continues_across_managers(self, tmp_path):
        CheckpointManager(tmp_path).save(_state(n_updates=10))
        CheckpointManager(tmp_path).save(_state(n_updates=20))
        names = sorted(p.name for p in tmp_path.glob("ckpt-*.json"))
        assert names == ["ckpt-00000001.json", "ckpt-00000002.json"]

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointManager(tmp_path, every_n_checks=0)
        with pytest.raises(ValueError):
            CheckpointManager(tmp_path, keep=0)


class TestCorruptionRecovery:
    def _two_snapshots(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(_state(n_updates=10))
        manager.save(_state(n_updates=20))
        manifests = sorted(tmp_path.glob("ckpt-*.json"))
        return manifests[-1]

    def test_torn_npz_falls_back(self, tmp_path):
        newest_manifest = self._two_snapshots(tmp_path)
        npz = newest_manifest.with_suffix(".npz")
        npz.write_bytes(npz.read_bytes()[:-20])  # truncate: torn write
        loaded = CheckpointManager(tmp_path).load_latest()
        assert loaded is not None
        assert loaded.n_updates == 10

    def test_garbage_manifest_falls_back(self, tmp_path):
        newest_manifest = self._two_snapshots(tmp_path)
        newest_manifest.write_text("{ not json")
        assert CheckpointManager(tmp_path).load_latest().n_updates == 10

    def test_missing_npz_falls_back(self, tmp_path):
        newest_manifest = self._two_snapshots(tmp_path)
        newest_manifest.with_suffix(".npz").unlink()
        assert CheckpointManager(tmp_path).load_latest().n_updates == 10

    def test_version_mismatch_falls_back(self, tmp_path):
        newest_manifest = self._two_snapshots(tmp_path)
        manifest = json.loads(newest_manifest.read_text())
        manifest["checkpoint_version"] = CHECKPOINT_VERSION + 1
        newest_manifest.write_text(json.dumps(manifest))
        assert CheckpointManager(tmp_path).load_latest().n_updates == 10

    def test_all_corrupt_loads_none(self, tmp_path):
        CheckpointManager(tmp_path).save(_state(n_updates=10))
        for manifest in tmp_path.glob("ckpt-*.json"):
            manifest.write_text("garbage")
        assert CheckpointManager(tmp_path).load_latest() is None

    def test_load_one_reports_checksum_mismatch(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manifest_path = manager.save(_state())
        npz = manifest_path.with_suffix(".npz")
        npz.write_bytes(npz.read_bytes()[:-1] + b"X")
        with pytest.raises(CheckpointError, match="checksum"):
            manager._load_one(manifest_path)  # noqa: SLF001 - targeted check
