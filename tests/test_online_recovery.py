"""Online-model crash recovery: checkpoint + WAL suffix == live factors.

The serving recovery suite proves *session state* survives mid-stream
kills bit-identically; this one proves the *model* does too. A service
with live ISGD updates crashes at an injected WAL-write fault
(:class:`~repro.resilience.faults.FaultInjector` — the write never
commits, exactly a SIGKILL at the append boundary), a fresh process
refits the deterministic base model, restores the newest online
checkpoint if any, catches up by WAL replay, and finishes the stream.
Its final fingerprint must equal a never-crashed reference run's, for
every model family and at a sweep of kill points (tier-2).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import pytest

from conftest import SMALL_WINDOW

from repro.data.split import SplitDataset
from repro.resilience.faults import FaultInjected, FaultInjector
from repro.serving.events import EventLog
from repro.serving.service import service_for_split

from test_online_trainer import (
    MODEL_BUILDERS,
    held_out_stream,
    online_config,
)

K = 5


def reference_fingerprint(
    split: SplitDataset, kind: str, stream, tmp_path
) -> str:
    """The never-crashed live run every recovery must reproduce."""
    model = MODEL_BUILDERS[kind](split)
    log = EventLog.open(tmp_path / "reference.log")
    with service_for_split(
        model,
        split,
        event_log=log,
        config=online_config(n_items=split.n_items),
    ) as service:
        for user, item in stream:
            service.step(user, item, k=K)
        return service.online_trainer.model_fingerprint()


def crash_and_recover(
    split: SplitDataset,
    kind: str,
    stream,
    tmp_path,
    crash_on_write: int,
    checkpoint_at: Optional[int] = None,
) -> Tuple[int, str]:
    """Crash at the M-th WAL write, restart, finish the stream.

    Returns (position the crash interrupted, recovered final
    fingerprint). With ``checkpoint_at`` the live trainer checkpoints
    at that stream position, and the restarted service resumes from the
    checkpoint instead of replaying the whole log.
    """
    log_path = tmp_path / f"crash{crash_on_write}.log"
    ckpt_dir = tmp_path / f"ckpt{crash_on_write}"
    injector = FaultInjector(crash_on_write=crash_on_write)
    log = EventLog.open(log_path, fault_injector=injector)
    model = MODEL_BUILDERS[kind](split)
    service = service_for_split(
        model,
        split,
        event_log=log,
        config=online_config(n_items=split.n_items),
        online_checkpoint_dir=str(ckpt_dir),
    )
    crashed_at = None
    for index, (user, item) in enumerate(stream):
        if checkpoint_at is not None and index == checkpoint_at:
            service.online_trainer.checkpoint()
        try:
            service.step(user, item, k=K)
        except FaultInjected:
            crashed_at = index
            break
    assert crashed_at is not None, "injector never fired"
    # Simulated hard kill: no close(), no flush, no seal. The crashed
    # service's model object is dead with the process.

    recovered_log = EventLog.open(log_path)
    assert len(recovered_log) == crashed_at
    fresh_model = MODEL_BUILDERS[kind](split)
    recovered = service_for_split(
        fresh_model,
        split,
        event_log=recovered_log,
        config=online_config(n_items=split.n_items),
        online_checkpoint_dir=str(ckpt_dir),
    )
    if checkpoint_at is not None and checkpoint_at < crashed_at:
        assert recovered.online_trainer.cursor >= checkpoint_at
    with recovered:
        for user, item in stream[crashed_at:]:
            recovered.step(user, item, k=K)
        return crashed_at, recovered.online_trainer.model_fingerprint()


class TestCrashRecovery:
    @pytest.mark.parametrize("kind", ("tsppr", "ppr", "fpmc"))
    def test_single_kill_point(
        self, gowalla_split: SplitDataset, tmp_path, kind: str
    ) -> None:
        stream = held_out_stream(gowalla_split)
        reference = reference_fingerprint(
            gowalla_split, kind, stream, tmp_path
        )
        crashed_at, recovered = crash_and_recover(
            gowalla_split, kind, stream, tmp_path, crash_on_write=41
        )
        assert 0 < crashed_at < len(stream)
        assert recovered == reference

    def test_kill_after_checkpoint(
        self, gowalla_split: SplitDataset, tmp_path
    ) -> None:
        """Checkpoint survives the crash; only the WAL suffix replays."""
        stream = held_out_stream(gowalla_split)
        reference = reference_fingerprint(
            gowalla_split, "tsppr", stream, tmp_path
        )
        crashed_at, recovered = crash_and_recover(
            gowalla_split,
            "tsppr",
            stream,
            tmp_path,
            crash_on_write=60,
            checkpoint_at=30,
        )
        assert crashed_at > 30
        assert recovered == reference


@pytest.mark.tier2
class TestKillPointSweep:
    """Every 9th WAL write as a crash point (slow, tier2)."""

    @pytest.mark.parametrize("kind", ("tsppr", "fpmc"))
    def test_sweep(
        self, gowalla_split: SplitDataset, tmp_path, kind: str
    ) -> None:
        stream = held_out_stream(gowalla_split)
        reference = reference_fingerprint(
            gowalla_split, kind, stream, tmp_path
        )
        failures: List[str] = []
        for crash_on_write in range(9, len(stream), 9):
            crashed_at, recovered = crash_and_recover(
                gowalla_split, kind, stream, tmp_path, crash_on_write
            )
            if recovered != reference:
                failures.append(
                    f"kill at write {crash_on_write} (stream position "
                    f"{crashed_at}): fingerprint diverged"
                )
        assert not failures, "; ".join(failures)

    def test_sweep_with_checkpoints(
        self, gowalla_split: SplitDataset, tmp_path
    ) -> None:
        """Checkpoint cadence x kill point: resume always lands exact."""
        stream = held_out_stream(gowalla_split)
        reference = reference_fingerprint(
            gowalla_split, "ppr", stream, tmp_path
        )
        for crash_on_write, checkpoint_at in (
            (25, 10),
            (50, 40),
            (75, 74),
            (100, 50),
        ):
            crashed_at, recovered = crash_and_recover(
                gowalla_split,
                "ppr",
                stream,
                tmp_path,
                crash_on_write=crash_on_write,
                checkpoint_at=checkpoint_at,
            )
            assert recovered == reference, (
                f"kill at write {crash_on_write} with checkpoint at "
                f"{checkpoint_at} (crashed at {crashed_at}) diverged"
            )
