"""Tests for repro.config."""

import dataclasses

import pytest

from repro.config import (
    FEATURE_NAMES,
    EvaluationConfig,
    SplitConfig,
    TSPPRConfig,
    WindowConfig,
    gowalla_default_config,
    lastfm_default_config,
    normalize_top_ns,
)


class TestWindowConfig:
    def test_defaults_match_paper(self):
        config = WindowConfig()
        assert config.window_size == 100
        assert config.min_gap == 10

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError, match="window_size"):
            WindowConfig(window_size=0)

    def test_rejects_min_gap_at_least_window(self):
        with pytest.raises(ValueError, match="min_gap"):
            WindowConfig(window_size=10, min_gap=10)

    def test_rejects_zero_min_gap(self):
        with pytest.raises(ValueError, match="min_gap"):
            WindowConfig(window_size=10, min_gap=0)

    def test_is_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            WindowConfig().window_size = 5  # type: ignore[misc]


class TestTSPPRConfig:
    def test_table4_defaults(self):
        config = TSPPRConfig()
        assert config.n_factors == 40
        assert config.n_negative_samples == 10
        assert config.feature_names == FEATURE_NAMES

    def test_n_features_tracks_feature_names(self):
        config = TSPPRConfig(feature_names=("recency", "item_quality"))
        assert config.n_features == 2

    def test_rejects_unknown_feature(self):
        with pytest.raises(ValueError, match="unknown feature"):
            TSPPRConfig(feature_names=("not_a_feature",))

    def test_rejects_empty_features(self):
        with pytest.raises(ValueError, match="at least one"):
            TSPPRConfig(feature_names=())

    def test_rejects_bad_recency_kind(self):
        with pytest.raises(ValueError, match="recency_kind"):
            TSPPRConfig(recency_kind="linear")

    def test_rejects_negative_regularization(self):
        with pytest.raises(ValueError, match="non-negative"):
            TSPPRConfig(lambda_mapping=-0.1)

    def test_rejects_bad_batch_fraction(self):
        with pytest.raises(ValueError, match="batch_fraction"):
            TSPPRConfig(batch_fraction=0.0)

    def test_with_overrides_returns_new_instance(self):
        base = TSPPRConfig()
        changed = base.with_overrides(n_factors=8)
        assert changed.n_factors == 8
        assert base.n_factors == 40

    @pytest.mark.parametrize(
        "factory, lam, gamma",
        [
            (gowalla_default_config, 0.01, 0.05),
            (lastfm_default_config, 0.001, 0.1),
        ],
    )
    def test_dataset_defaults_match_table4(self, factory, lam, gamma):
        config = factory()
        assert config.lambda_mapping == pytest.approx(lam)
        assert config.gamma_latent == pytest.approx(gamma)
        assert config.n_factors == 40
        assert config.n_negative_samples == 10

    def test_dataset_defaults_accept_overrides(self):
        config = gowalla_default_config(n_factors=16)
        assert config.n_factors == 16
        assert config.lambda_mapping == pytest.approx(0.01)


class TestSplitConfig:
    def test_defaults_match_paper(self):
        config = SplitConfig()
        assert config.train_fraction == pytest.approx(0.7)
        assert config.min_train_length == 100

    @pytest.mark.parametrize("fraction", [0.0, 1.0, -0.5, 1.5])
    def test_rejects_bad_fraction(self, fraction):
        with pytest.raises(ValueError, match="train_fraction"):
            SplitConfig(train_fraction=fraction)


class TestEvaluationConfig:
    def test_default_cutoffs(self):
        assert EvaluationConfig().top_ns == (1, 5, 10)

    def test_rejects_empty_cutoffs(self):
        with pytest.raises(ValueError, match="top_ns"):
            EvaluationConfig(top_ns=())

    def test_rejects_nonpositive_cutoffs(self):
        with pytest.raises(ValueError, match="top_ns"):
            EvaluationConfig(top_ns=(0, 5))


class TestNormalizeTopNs:
    def test_sorts_and_dedupes(self):
        assert normalize_top_ns([10, 1, 5, 5]) == (1, 5, 10)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            normalize_top_ns([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            normalize_top_ns([0, 3])
