"""Live-state equivalence: LiveSession must track ScoringSession exactly.

The serving layer's correctness rests on one invariant: after any number
of ``append``ed events, a :class:`LiveSession` holds bit-identical
window/Ω/recency state to a fresh :class:`ScoringSession` built over the
concatenated (base + live) sequence. These tests assert that on the
realistic synthetic split — window multisets, candidates, last
positions, target predicates, and the shared ``state_fingerprint``
digest — including the Ω=0 edge, window overflow, and LRU
eviction→rehydration round-trips through :class:`SessionStore`.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import SMALL_WINDOW

from repro.data.sequence import ConsumptionSequence
from repro.data.split import SplitDataset
from repro.engine.session import ScoringSession
from repro.exceptions import DataError, ServingError
from repro.serving.state import LiveSession, SessionStore


def offline_session(items, window_size, min_gap, user=0):
    """A ScoringSession positioned at the end of ``items``."""
    sequence = ConsumptionSequence(user, items)
    return ScoringSession(
        sequence, window_size, min_gap=min_gap, start=len(items)
    )


def assert_state_equal(live: LiveSession, offline: ScoringSession) -> None:
    """Every observable state contract, plus the canonical digest."""
    assert live.t == offline.t
    assert live.window_length() == offline.window_length()
    assert live.window_counts_map() == offline.window_counts_map()
    assert live.candidates() == offline.candidates()
    probe = sorted(set(live.window_counts_map()) | {0, 1, 10_000})
    for item in probe:
        assert live.window_count(item) == offline.window_count(item)
        assert live.last_position(item) == offline.last_position(item)
    np.testing.assert_array_equal(
        live.last_positions(np.array(probe, dtype=np.int64)),
        offline.last_positions(np.array(probe, dtype=np.int64)),
    )
    assert live.state_fingerprint() == offline.state_fingerprint()


class TestLiveSessionEquivalence:
    @pytest.mark.parametrize("min_gap", [0, 2, 5])
    def test_append_matches_fresh_scoring_session(
        self, gowalla_split: SplitDataset, min_gap: int
    ) -> None:
        """After each of N appends, state equals a freshly built session."""
        user = 0
        sequence = gowalla_split.full_sequence(user)
        boundary = gowalla_split.train_boundary(user)
        prefix = gowalla_split.train_sequence(user)
        live = LiveSession(
            user, SMALL_WINDOW.window_size, min_gap, history=prefix
        )
        items = sequence.items.tolist()
        for step, item in enumerate(items[boundary:boundary + 30]):
            position = live.append(item)
            assert position == boundary + step
            offline = offline_session(
                items[: boundary + step + 1],
                SMALL_WINDOW.window_size,
                min_gap,
                user=user,
            )
            assert_state_equal(live, offline)
        assert live.n_live_events == min(30, len(items) - boundary)

    def test_from_empty_history(self) -> None:
        """A cold user built purely from live events."""
        live = LiveSession(7, window_size=4, min_gap=1)
        stream = [3, 1, 3, 2, 3, 1, 1, 4, 3, 2]
        for step, item in enumerate(stream):
            live.append(item)
            assert_state_equal(
                live, offline_session(stream[: step + 1], 4, 1, user=7)
            )

    def test_window_overflow_drops_oldest(self) -> None:
        """Once t exceeds |W| the leaving item must decrement correctly."""
        live = LiveSession(0, window_size=3, min_gap=0)
        for item in [5, 5, 6, 7]:
            live.append(item)
        # Window holds positions 1..3 = [5, 6, 7]; the first 5 left.
        assert live.window_counts_map() == {5: 1, 6: 1, 7: 1}
        live.append(8)  # drops the remaining 5
        assert live.window_counts_map() == {6: 1, 7: 1, 8: 1}
        assert live.candidates() == [6, 7, 8]
        assert_state_equal(
            live, offline_session([5, 5, 6, 7, 8], 3, 0)
        )

    def test_omega_zero_disables_filter(self) -> None:
        """min_gap=0: every distinct window item is a candidate."""
        live = LiveSession(0, window_size=5, min_gap=0)
        for item in [1, 2, 1, 3]:
            live.append(item)
        assert live.candidates() == [1, 2, 3]
        # Just-consumed items stay candidates without the Ω-filter.
        assert 3 in live.candidates()

    def test_omega_filter_excludes_recent(self) -> None:
        live = LiveSession(0, window_size=5, min_gap=2)
        for item in [1, 2, 1, 3]:
            live.append(item)
        # Last 2 steps consumed {1, 3}; only 2 survives the filter.
        assert live.candidates() == [2]

    def test_is_next_target_matches_offline_is_target(
        self, gowalla_split: SplitDataset
    ) -> None:
        """The serving target predicate equals the offline walk's."""
        user = 1
        sequence = gowalla_split.full_sequence(user)
        boundary = gowalla_split.train_boundary(user)
        items = sequence.items.tolist()
        live = LiveSession(
            user,
            SMALL_WINDOW.window_size,
            SMALL_WINDOW.min_gap,
            history=gowalla_split.train_sequence(user),
        )
        offline = ScoringSession(
            sequence,
            SMALL_WINDOW.window_size,
            min_gap=SMALL_WINDOW.min_gap,
            start=boundary,
        )
        n_targets = 0
        for item in items[boundary:]:
            assert live.is_next_target(item) == offline.is_target()
            n_targets += int(offline.is_target())
            live.append(item)
            offline.advance()
        assert n_targets > 0, "fixture produced no repeat targets"

    def test_sequence_materializes_full_history(self) -> None:
        live = LiveSession(3, window_size=4, min_gap=0)
        for item in [9, 8, 9]:
            live.append(item)
        seq = live.sequence()
        assert seq.user == 3
        np.testing.assert_array_equal(seq.items, np.array([9, 8, 9]))
        assert live.sequence() is seq  # cached until the next append
        live.append(7)
        assert live.sequence() is not seq

    def test_validation(self, gowalla_split: SplitDataset) -> None:
        with pytest.raises(DataError, match="window_size"):
            LiveSession(0, window_size=0)
        with pytest.raises(DataError, match="min_gap"):
            LiveSession(0, window_size=5, min_gap=-1)
        with pytest.raises(DataError, match="belongs to user"):
            LiveSession(1, 5, history=gowalla_split.train_sequence(0))
        with pytest.raises(DataError, match="non-negative"):
            LiveSession(0, 5).append(-3)


class TestSessionStore:
    def make_store(self, split: SplitDataset, capacity=1024, event_source=None):
        return SessionStore(
            SMALL_WINDOW.window_size,
            SMALL_WINDOW.min_gap,
            capacity=capacity,
            history_provider=split.train_sequence,
            event_source=event_source,
        )

    def test_get_builds_from_history(self, gowalla_split: SplitDataset) -> None:
        store = self.make_store(gowalla_split)
        session = store.get(0)
        boundary = gowalla_split.train_boundary(0)
        assert session.t == boundary
        assert store.get(0) is session
        assert store.counters.hits == 1
        assert store.counters.misses == 1

    def test_lru_eviction_order(self, gowalla_split: SplitDataset) -> None:
        store = self.make_store(gowalla_split, capacity=2)
        store.get(0)
        store.get(1)
        store.get(0)  # 1 is now least recently used
        store.get(2)  # evicts 1
        assert store.resident_users() == [0, 2]
        assert store.counters.evictions == 1

    def test_eviction_rehydration_round_trip(
        self, gowalla_split: SplitDataset
    ) -> None:
        """Evict a user with live events; rehydration must replay them."""
        logged = {}

        def event_source(user):
            return list(logged.get(user, []))

        store = self.make_store(gowalla_split, event_source=event_source)
        user = 0
        suffix = gowalla_split.full_sequence(user).items[
            gowalla_split.train_boundary(user):
        ].tolist()
        store.get(user)  # materialize before logging (WAL contract)
        for item in suffix:
            logged.setdefault(user, []).append(item)
            store.append(user, item)
        before = store.state_fingerprint(user)
        assert store.evict(user)
        assert not store.evict(user)  # already gone
        after = store.state_fingerprint(user)
        assert after == before
        assert store.counters.rehydrations == 1

    def test_rehydration_without_events_is_cold_build(
        self, gowalla_split: SplitDataset
    ) -> None:
        store = self.make_store(gowalla_split, event_source=lambda user: [])
        fingerprint = store.state_fingerprint(0)
        store.evict(0)
        assert store.state_fingerprint(0) == fingerprint
        assert store.counters.rehydrations == 0

    def test_capacity_validation(self) -> None:
        with pytest.raises(ServingError, match="capacity"):
            SessionStore(10, 2, capacity=0)

    def test_counters_as_dict(self, gowalla_split: SplitDataset) -> None:
        store = self.make_store(gowalla_split)
        store.get(0)
        store.get(0)
        counters = store.counters.as_dict()
        assert counters["hits"] == 1
        assert counters["misses"] == 1
        assert counters["hit_rate"] == pytest.approx(0.5)


def test_fingerprint_matches_scoring_session(
    gowalla_split: SplitDataset,
) -> None:
    """The digest is shared: live and offline sessions agree on it."""
    user = 2
    sequence = gowalla_split.full_sequence(user)
    boundary = gowalla_split.train_boundary(user)
    live = LiveSession(
        user,
        SMALL_WINDOW.window_size,
        SMALL_WINDOW.min_gap,
        history=gowalla_split.train_sequence(user),
    )
    for item in sequence.items[boundary:].tolist():
        live.append(item)
    offline = ScoringSession(
        sequence,
        SMALL_WINDOW.window_size,
        min_gap=SMALL_WINDOW.min_gap,
        start=len(sequence),
    )
    assert live.state_fingerprint() == offline.state_fingerprint()
    # And the digest is sensitive: one more event changes it.
    live.append(int(sequence.items[0]))
    assert live.state_fingerprint() != offline.state_fingerprint()
