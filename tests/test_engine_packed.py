"""PackedCandidateBatch invariants: layout, compaction, and typing.

The packed buffer backs the in-flight serving loop, so its contracts
are load-bearing for bit-identity: row ranges must always reproduce the
exact candidate ints admitted, in admission order, across any
admit/retire interleaving, growth, and compaction.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.engine.packed import PackedCandidateBatch, _INITIAL_CAPACITY
from repro.exceptions import EngineError


class TestBasics:
    def test_admit_and_read_back(self) -> None:
        batch = PackedCandidateBatch()
        assert len(batch) == 0
        assert batch.live_rows == 0
        assert batch.admit("a", (3, 1, 4)) == 3
        assert batch.admit("b", (1, 5)) == 2
        assert len(batch) == 2
        assert "a" in batch and "b" in batch and "c" not in batch
        assert batch.live_rows == 5
        assert batch.candidate_list_of("a") == [3, 1, 4]
        assert batch.candidate_list_of("b") == [1, 5]
        np.testing.assert_array_equal(
            batch.packed_candidates(), [3, 1, 4, 1, 5]
        )
        np.testing.assert_array_equal(batch.cu_seqlens(), [0, 3, 5])

    def test_candidate_list_yields_plain_ints(self) -> None:
        """Query candidates must be Python ints, not np.int64 scalars."""
        batch = PackedCandidateBatch()
        batch.admit("a", np.array([7, 9], dtype=np.int64))
        values = batch.candidate_list_of("a")
        assert all(type(v) is int for v in values)
        assert values == [7, 9]

    def test_duplicate_admit_raises(self) -> None:
        batch = PackedCandidateBatch()
        batch.admit("a", (1,))
        with pytest.raises(EngineError, match="already"):
            batch.admit("a", (2,))

    def test_retire_unknown_raises(self) -> None:
        batch = PackedCandidateBatch()
        with pytest.raises(EngineError, match="not in the batch"):
            batch.retire("ghost")
        with pytest.raises(EngineError, match="not in the batch"):
            batch.candidates_of("ghost")

    def test_retire_frees_rows(self) -> None:
        batch = PackedCandidateBatch()
        batch.admit("a", (1, 2, 3))
        batch.admit("b", (4,))
        assert batch.retire("a") == 3
        assert "a" not in batch
        assert len(batch) == 1
        assert batch.live_rows == 1
        assert batch.candidate_list_of("b") == [4]
        np.testing.assert_array_equal(batch.packed_candidates(), [4])

    def test_empty_candidate_request(self) -> None:
        batch = PackedCandidateBatch()
        assert batch.admit("a", ()) == 0
        assert "a" in batch
        assert batch.candidate_list_of("a") == []
        np.testing.assert_array_equal(batch.cu_seqlens(), [0, 0])
        assert batch.retire("a") == 0


class TestStorageManagement:
    def test_growth_past_initial_capacity(self) -> None:
        batch = PackedCandidateBatch()
        wide = list(range(_INITIAL_CAPACITY + 17))
        batch.admit("wide", wide)
        batch.admit("tail", (1, 2))
        assert batch.candidate_list_of("wide") == wide
        assert batch.candidate_list_of("tail") == [1, 2]

    def test_compaction_preserves_admission_order(self) -> None:
        batch = PackedCandidateBatch()
        for key in range(8):
            batch.admit(key, (key * 10, key * 10 + 1))
        for key in (0, 2, 4, 6):
            batch.retire(key)
        # Dead rows can never outnumber live rows after a retire.
        assert batch.dead_rows <= batch.live_rows
        expected = [v for key in (1, 3, 5, 7) for v in (key * 10, key * 10 + 1)]
        np.testing.assert_array_equal(batch.packed_candidates(), expected)
        np.testing.assert_array_equal(batch.cu_seqlens(), [0, 2, 4, 6, 8])
        for key in (1, 3, 5, 7):
            assert batch.candidate_list_of(key) == [key * 10, key * 10 + 1]

    def test_randomized_against_dict_reference(self) -> None:
        """Fuzz admit/retire against a plain dict-of-tuples model."""
        rng = random.Random(20260808)
        batch = PackedCandidateBatch()
        reference: dict = {}
        next_key = 0
        for _ in range(2000):
            if reference and rng.random() < 0.45:
                key = rng.choice(list(reference))
                assert batch.retire(key) == len(reference.pop(key))
            else:
                key = next_key
                next_key += 1
                rows = tuple(
                    rng.randrange(10_000) for _ in range(rng.randrange(0, 30))
                )
                reference[key] = rows
                batch.admit(key, rows)
            assert len(batch) == len(reference)
            assert batch.live_rows == sum(len(v) for v in reference.values())
            assert batch.dead_rows <= max(batch.live_rows, 0)
        flat = [v for rows in reference.values() for v in rows]
        np.testing.assert_array_equal(batch.packed_candidates(), flat)
        lengths = [len(rows) for rows in reference.values()]
        np.testing.assert_array_equal(
            batch.cu_seqlens(), np.concatenate([[0], np.cumsum(lengths)])
        )
        for key, rows in reference.items():
            assert batch.candidate_list_of(key) == list(rows)
