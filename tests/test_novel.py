"""Tests for repro.novel — novel-item recommendation and the mixture."""

import numpy as np
import pytest

from repro.config import TSPPRConfig, WindowConfig
from repro.data.sequence import ConsumptionSequence
from repro.exceptions import EvaluationError, NotFittedError, SamplingError
from repro.models.strec import STRECClassifier
from repro.models.tsppr import TSPPRRecommender
from repro.novel.candidates import (
    NovelEvaluationConfig,
    consumed_items_before,
    iter_novel_evaluation_positions,
    sample_novel_candidates,
)
from repro.novel.mixture import MixtureRecommender, evaluate_next_item
from repro.novel.models import NovelPopRecommender, NovelTSPPRRecommender
from repro.novel.sampling import sample_novel_quadruples

SMOKE = TSPPRConfig(max_epochs=6000, seed=4)


class TestCandidates:
    def test_consumed_items_before(self):
        sequence = ConsumptionSequence(0, [3, 1, 3, 2])
        assert consumed_items_before(sequence, 0) == set()
        assert consumed_items_before(sequence, 3) == {1, 3}

    def test_sample_excludes_consumed(self, rng):
        candidates = sample_novel_candidates({0, 1, 2}, 10, 5, rng)
        assert len(candidates) == 5
        assert not set(candidates) & {0, 1, 2}

    def test_sample_caps_at_available(self, rng):
        candidates = sample_novel_candidates({0, 1}, 4, 10, rng)
        assert sorted(candidates) == [2, 3]

    def test_sample_empty_when_everything_consumed(self, rng):
        assert sample_novel_candidates({0, 1}, 2, 3, rng) == []

    def test_popularity_biased_sampling(self, rng):
        popularity = np.zeros(100)
        popularity[10] = 1000.0  # overwhelmingly popular
        hits = 0
        for _ in range(20):
            candidates = sample_novel_candidates(
                {0}, 100, 3, rng, popularity=popularity
            )
            hits += 10 in candidates
        assert hits >= 18

    def test_popularity_zero_for_consumed(self, rng):
        popularity = np.zeros(10)
        popularity[3] = 100.0
        candidates = sample_novel_candidates(
            {3}, 10, 2, rng, popularity=popularity
        )
        assert 3 not in candidates

    def test_validation(self, rng):
        with pytest.raises(EvaluationError):
            sample_novel_candidates(set(), 10, 0, rng)
        with pytest.raises(EvaluationError):
            sample_novel_candidates(set(), 10, 2, rng, popularity=np.ones(3))
        with pytest.raises(EvaluationError):
            NovelEvaluationConfig(n_sampled_candidates=0)

    def test_iter_novel_positions(self):
        sequence = ConsumptionSequence(0, [1, 2, 1, 3, 2, 4])
        rows = list(iter_novel_evaluation_positions(sequence, 2))
        # Test side starts at t=2: 1 repeats, 3 novel, 2 repeats, 4 novel.
        assert [t for t, _ in rows] == [3, 5]
        t, consumed = rows[0]
        assert consumed == {1, 2}


class TestNovelSampling:
    def test_positives_are_first_time(self, gowalla_split):
        quadruples = sample_novel_quadruples(
            gowalla_split, n_negatives=2, random_state=1
        )
        assert len(quadruples) > 0
        for index in range(min(len(quadruples), 300)):
            user, positive, negative, t = quadruples.row(index)
            sequence = gowalla_split.full_sequence(user)
            history = set(sequence.items[:t].tolist())
            assert int(sequence[t]) == positive
            assert positive not in history
            assert negative not in history
            assert negative != positive

    def test_raises_without_novelty(self):
        from repro.config import SplitConfig
        from repro.data.dataset import Dataset
        from repro.data.split import temporal_split

        dataset = Dataset.from_user_items([[0, 0, 0, 0]], n_items=1)
        split = temporal_split(
            dataset, SplitConfig(train_fraction=0.75, min_train_length=1)
        )
        with pytest.raises(SamplingError, match="novel"):
            sample_novel_quadruples(split, n_negatives=2)


class TestNovelModels:
    def test_novel_tsppr_trains_and_ranks(self, gowalla_split):
        model = NovelTSPPRRecommender(SMOKE).fit(gowalla_split)
        sequence = gowalla_split.full_sequence(0)
        t = gowalla_split.train_boundary(0)
        consumed = consumed_items_before(sequence, t)
        candidates = sample_novel_candidates(
            consumed, gowalla_split.n_items, 20, random_state=0
        )
        ranked = model.recommend(sequence, candidates, t, 5)
        assert len(ranked) == 5
        assert set(ranked) <= set(candidates)

    def test_novel_pop_demotes_consumed(self, gowalla_split):
        model = NovelPopRecommender().fit(gowalla_split)
        sequence = gowalla_split.full_sequence(0)
        t = gowalla_split.train_boundary(0)
        consumed_item = int(sequence[0])
        fresh_item = next(
            i for i in range(gowalla_split.n_items)
            if i not in consumed_items_before(sequence, t)
        )
        ranked = model.recommend(sequence, [consumed_item, fresh_item], t, 2)
        assert ranked[-1] == consumed_item


class TestMixture:
    @pytest.fixture(scope="class")
    def mixture(self, gowalla_split):
        strec = STRECClassifier().fit(gowalla_split)
        rrc = TSPPRRecommender(SMOKE).fit(gowalla_split)
        novel = NovelPopRecommender().fit(gowalla_split)
        return MixtureRecommender(strec, rrc, novel)

    def test_requires_fitted_components(self, gowalla_split):
        strec = STRECClassifier().fit(gowalla_split)
        with pytest.raises(NotFittedError):
            MixtureRecommender(
                strec, TSPPRRecommender(SMOKE), NovelPopRecommender()
            )

    def test_repeat_probability_in_unit_interval(self, mixture, gowalla_split):
        sequence = gowalla_split.full_sequence(0)
        p = mixture.repeat_probability(sequence, len(sequence) - 1)
        assert 0.0 <= p <= 1.0

    def test_recommend_blends_both_pools(self, mixture, gowalla_split):
        sequence = gowalla_split.full_sequence(0)
        t = gowalla_split.train_boundary(0)
        repeat_pool = sorted(set(sequence.items[:t].tolist()))[:10]
        novel_pool = sample_novel_candidates(
            consumed_items_before(sequence, t),
            gowalla_split.n_items, 10, random_state=2,
        )
        blended = mixture.recommend(sequence, t, 8, repeat_pool, novel_pool)
        assert len(blended) == 8
        assert len(set(blended)) == 8
        assert set(blended) <= set(repeat_pool) | set(novel_pool)

    def test_recommend_with_empty_repeat_pool(self, mixture, gowalla_split):
        sequence = gowalla_split.full_sequence(0)
        t = gowalla_split.train_boundary(0)
        novel_pool = list(range(5))
        blended = mixture.recommend(sequence, t, 3, [], novel_pool)
        assert set(blended) <= set(novel_pool)

    def test_k_validation(self, mixture, gowalla_split):
        sequence = gowalla_split.full_sequence(0)
        with pytest.raises(EvaluationError):
            mixture.recommend(sequence, 5, 0, [1], [2])

    def test_evaluate_next_item(self, mixture, gowalla_split):
        result = evaluate_next_item(
            mixture, gowalla_split,
            novel_config=NovelEvaluationConfig(n_sampled_candidates=20),
            random_state=3,
            max_targets_per_user=30,
        )
        assert result.n_targets > 0
        assert 0.0 <= result.repeat_share <= 1.0
        for n, rate in result.hit_rate.items():
            assert 0.0 <= rate <= 1.0
        assert result.hit_rate[1] <= result.hit_rate[10]
