"""Crash/resume equivalence tests: run_sgd and the learned models.

The contract under test: a run killed mid-training and resumed from its
newest valid checkpoint produces *bit-identical* results — parameters,
update counts, and the whole margin history — to an uninterrupted run.
"""

import numpy as np
import pytest

from repro.config import TSPPRConfig
from repro.models.fpmc import FPMCRecommender
from repro.models.ppr import PPRRecommender
from repro.models.tsppr import TSPPRRecommender
from repro.optim.sgd import run_sgd
from repro.resilience.checkpoint import CheckpointManager
from repro.resilience.faults import FaultInjected, FaultInjector


def make_problem(seed, n=50):
    """A tiny deterministic SGD problem driven by a seeded generator."""
    rng = np.random.default_rng(seed)
    target = np.linspace(-1.0, 1.0, n)
    params = {"w": np.zeros(n)}

    def draw_index():
        return int(rng.integers(n))

    def apply_update(i):
        params["w"][i] += 0.2 * (target[i] - params["w"][i])

    def batch_margin():
        return float(-np.mean((params["w"] - target) ** 2))

    def get_state():
        return {"w": params["w"]}

    def set_state(state):
        params["w"][...] = state["w"]

    return {
        "rng": rng,
        "params": params,
        "draw_index": draw_index,
        "apply_update": apply_update,
        "batch_margin": batch_margin,
        "get_state": get_state,
        "set_state": set_state,
    }


def _run(problem, checkpoint=None, fault_injector=None):
    return run_sgd(
        problem["draw_index"],
        problem["apply_update"],
        problem["batch_margin"],
        max_updates=500,
        check_interval=50,
        tol=1e-12,
        patience=3,
        checkpoint=checkpoint,
        get_state=problem["get_state"],
        set_state=problem["set_state"],
        rng=problem["rng"],
        fault_injector=fault_injector,
    )


class TestRunSGDResume:
    def test_checkpointing_changes_nothing(self, tmp_path):
        reference = _run(make_problem(3))
        problem = make_problem(3)
        result = _run(problem, checkpoint=CheckpointManager(tmp_path))
        assert result == reference

    def test_crash_and_resume_bit_identical(self, tmp_path):
        reference_problem = make_problem(3)
        reference = _run(reference_problem)

        crashed = make_problem(3)
        with pytest.raises(FaultInjected):
            _run(
                crashed,
                checkpoint=CheckpointManager(tmp_path),
                fault_injector=FaultInjector(crash_at_update=237),
            )

        resumed = make_problem(3)
        result = _run(resumed, checkpoint=CheckpointManager(tmp_path))
        assert result == reference
        assert np.array_equal(
            resumed["params"]["w"], reference_problem["params"]["w"]
        )

    def test_torn_newest_checkpoint_falls_back_and_matches(self, tmp_path):
        reference = _run(make_problem(3))

        with pytest.raises(FaultInjected):
            _run(
                make_problem(3),
                checkpoint=CheckpointManager(tmp_path),
                fault_injector=FaultInjector(crash_at_update=237),
            )
        newest = sorted(tmp_path.glob("ckpt-*.npz"))[-1]
        newest.write_bytes(newest.read_bytes()[:-30])  # torn write

        result = _run(make_problem(3), checkpoint=CheckpointManager(tmp_path))
        assert result == reference

    def test_checkpoint_requires_state_callables(self):
        problem = make_problem(3)
        with pytest.raises(ValueError, match="get_state"):
            run_sgd(
                problem["draw_index"],
                problem["apply_update"],
                problem["batch_margin"],
                max_updates=10,
                check_interval=5,
                checkpoint=CheckpointManager("unused"),
            )


def _crash_then_resume(model_factory, split, tmp_path):
    """Kill a fit halfway through its updates, then resume it."""
    reference = model_factory().fit(split)
    crash_at = reference.sgd_result_.n_updates // 2
    assert crash_at > 0

    with pytest.raises(FaultInjected):
        model_factory().fit(
            split,
            checkpoint_dir=tmp_path,
            fault_injector=FaultInjector(crash_at_update=crash_at),
        )
    assert list(tmp_path.glob("ckpt-*.json")), "crash left no checkpoint"

    resumed = model_factory().fit(split, checkpoint_dir=tmp_path)
    return reference, resumed


class TestModelResume:
    def test_tsppr_resume_bit_identical(self, gowalla_split, tmp_path):
        config = TSPPRConfig(max_epochs=4000, seed=8)
        reference, resumed = _crash_then_resume(
            lambda: TSPPRRecommender(config), gowalla_split, tmp_path
        )
        assert np.array_equal(resumed.user_factors_, reference.user_factors_)
        assert np.array_equal(resumed.item_factors_, reference.item_factors_)
        assert np.array_equal(resumed.mappings_, reference.mappings_)
        assert resumed.sgd_result_ == reference.sgd_result_

    def test_ppr_resume_bit_identical(self, gowalla_split, tmp_path):
        config = TSPPRConfig(max_epochs=4000, seed=8)
        reference, resumed = _crash_then_resume(
            lambda: PPRRecommender(config), gowalla_split, tmp_path
        )
        assert np.array_equal(resumed.user_factors_, reference.user_factors_)
        assert np.array_equal(resumed.item_factors_, reference.item_factors_)
        assert resumed.sgd_result_ == reference.sgd_result_

    def test_tsppr_block_mode_resume_matches_scalar_run(
        self, gowalla_split, tmp_path
    ):
        """Crash under the vectorized (block SGD) engine, resume, and
        compare against an *uninterrupted scalar* run: the crash/resume
        cycle and the engine swap must both be invisible."""
        scalar_reference = TSPPRRecommender(
            TSPPRConfig(max_epochs=4000, seed=8, training_engine="scalar")
        ).fit(gowalla_split)

        config = TSPPRConfig(max_epochs=4000, seed=8, training_engine="vectorized")
        crash_at = scalar_reference.sgd_result_.n_updates // 2
        with pytest.raises(FaultInjected):
            TSPPRRecommender(config).fit(
                gowalla_split,
                checkpoint_dir=tmp_path,
                fault_injector=FaultInjector(crash_at_update=crash_at),
            )
        resumed = TSPPRRecommender(config).fit(
            gowalla_split, checkpoint_dir=tmp_path
        )
        assert np.array_equal(
            resumed.user_factors_, scalar_reference.user_factors_
        )
        assert np.array_equal(
            resumed.item_factors_, scalar_reference.item_factors_
        )
        assert np.array_equal(resumed.mappings_, scalar_reference.mappings_)
        assert resumed.sgd_result_ == scalar_reference.sgd_result_

    @pytest.mark.tier2
    def test_fpmc_resume_bit_identical(self, gowalla_split, tmp_path):
        config = TSPPRConfig(max_epochs=4000, seed=8)
        reference, resumed = _crash_then_resume(
            lambda: FPMCRecommender(config), gowalla_split, tmp_path
        )
        assert np.array_equal(resumed.user_factors_, reference.user_factors_)
        assert np.array_equal(
            resumed.item_user_factors_, reference.item_user_factors_
        )
        assert np.array_equal(
            resumed.item_basket_factors_, reference.item_basket_factors_
        )
        assert np.array_equal(
            resumed.basket_item_factors_, reference.basket_item_factors_
        )
        assert resumed.sgd_result_ == reference.sgd_result_

    @pytest.mark.tier2
    def test_tsppr_shared_mapping_resume(self, gowalla_split, tmp_path):
        config = TSPPRConfig(max_epochs=4000, seed=8, share_mapping=True)
        reference, resumed = _crash_then_resume(
            lambda: TSPPRRecommender(config), gowalla_split, tmp_path
        )
        assert np.array_equal(resumed.mappings_, reference.mappings_)
        assert resumed.sgd_result_ == reference.sgd_result_

    @pytest.mark.tier2
    def test_double_crash_resume(self, gowalla_split, tmp_path):
        """Two successive crashes at different points still converge."""
        config = TSPPRConfig(max_epochs=4000, seed=8)
        reference = TSPPRRecommender(config).fit(gowalla_split)
        total = reference.sgd_result_.n_updates
        for crash_at in (total // 3, 2 * total // 3):
            with pytest.raises(FaultInjected):
                TSPPRRecommender(config).fit(
                    gowalla_split,
                    checkpoint_dir=tmp_path,
                    fault_injector=FaultInjector(crash_at_update=crash_at),
                )
        resumed = TSPPRRecommender(config).fit(
            gowalla_split, checkpoint_dir=tmp_path
        )
        assert np.array_equal(resumed.user_factors_, reference.user_factors_)
        assert resumed.sgd_result_ == reference.sgd_result_

    @pytest.mark.tier2
    @pytest.mark.parametrize("engine", ["scalar", "vectorized"])
    @pytest.mark.parametrize("fault_seed", [0, 1, 2, 3, 4])
    def test_seeded_crash_point_sweep(
        self, gowalla_split, tmp_path, fault_seed, engine
    ):
        """Seed-driven crash points under both execution engines:
        wherever the kill lands, resume reproduces the uninterrupted
        run exactly."""
        config = TSPPRConfig(max_epochs=4000, seed=8, training_engine=engine)
        reference = TSPPRRecommender(config).fit(gowalla_split)
        injector = FaultInjector.from_seed(
            fault_seed, max_update=reference.sgd_result_.n_updates
        )
        with pytest.raises(FaultInjected):
            TSPPRRecommender(config).fit(
                gowalla_split,
                checkpoint_dir=tmp_path,
                fault_injector=injector,
            )
        resumed = TSPPRRecommender(config).fit(
            gowalla_split, checkpoint_dir=tmp_path
        )
        assert np.array_equal(resumed.user_factors_, reference.user_factors_)
        assert np.array_equal(resumed.mappings_, reference.mappings_)
        assert resumed.sgd_result_ == reference.sgd_result_
