"""Tests for repro.windows.window."""

import pytest

from repro.data.sequence import ConsumptionSequence
from repro.exceptions import DataError
from repro.windows.window import WindowView, window_before


@pytest.fixture()
def sequence() -> ConsumptionSequence:
    #          t: 0  1  2  3  4  5  6
    return ConsumptionSequence(3, [1, 2, 1, 3, 2, 2, 4])


class TestWindowBefore:
    def test_full_window(self, sequence):
        window = window_before(sequence, 5, 3)
        assert window.items.tolist() == [1, 3, 2]
        assert window.start == 2 and window.end == 5
        assert window.user == 3

    def test_truncated_at_start(self, sequence):
        window = window_before(sequence, 2, 10)
        assert window.items.tolist() == [1, 2]

    def test_empty_window_at_zero(self, sequence):
        window = window_before(sequence, 0, 5)
        assert len(window) == 0
        assert window.item_set == frozenset()

    def test_window_at_sequence_end_allowed(self, sequence):
        window = window_before(sequence, len(sequence), 3)
        assert window.items.tolist() == [2, 2, 4]

    def test_rejects_position_past_end(self, sequence):
        with pytest.raises(DataError, match="outside"):
            window_before(sequence, len(sequence) + 1, 3)

    def test_rejects_negative_position(self, sequence):
        with pytest.raises(DataError, match="outside"):
            window_before(sequence, -1, 3)

    def test_rejects_nonpositive_size(self, sequence):
        with pytest.raises(DataError, match="window_size"):
            window_before(sequence, 3, 0)


class TestWindowView:
    def test_contains_and_count(self, sequence):
        window = window_before(sequence, 6, 6)  # items t=0..5: [1,2,1,3,2,2]
        assert 2 in window
        assert 1 in window
        assert 4 not in window
        assert window.count(2) == 3
        assert window.count(99) == 0

    def test_distinct_items_sorted(self, sequence):
        window = window_before(sequence, 6, 6)
        assert window.distinct_items() == [1, 2, 3]

    def test_familiarity_matches_eq21(self, sequence):
        window = window_before(sequence, 6, 6)  # [1,2,1,3,2,2], length 6
        assert window.familiarity(2) == pytest.approx(3 / 6)
        assert window.familiarity(3) == pytest.approx(1 / 6)
        assert window.familiarity(99) == 0.0

    def test_familiarity_empty_window(self, sequence):
        window = window_before(sequence, 0, 5)
        assert window.familiarity(1) == 0.0

    def test_last_occurrence(self, sequence):
        window = window_before(sequence, 6, 6)
        assert window.last_occurrence(2) == 5
        assert window.last_occurrence(1) == 2
        assert window.last_occurrence(4) == -1

    def test_item_set_is_frozen(self, sequence):
        window = window_before(sequence, 6, 6)
        assert isinstance(window.item_set, frozenset)
