"""Tests for repro.models.base and the simple baselines."""

import numpy as np
import pytest

from repro.config import WindowConfig
from repro.data.sequence import ConsumptionSequence
from repro.exceptions import EvaluationError, NotFittedError
from repro.models.base import Recommender
from repro.models.pop import PopRecommender
from repro.models.random_rec import RandomRecommender
from repro.models.recency import RecencyRecommender


class ConstantScorer(Recommender):
    """Test double: scores equal to the candidate item index."""

    name = "Constant"

    def _fit(self, split, window):
        pass

    def score(self, sequence, candidates, t):
        return np.asarray(candidates, dtype=float)


class BrokenScorer(Recommender):
    name = "Broken"

    def _fit(self, split, window):
        pass

    def score(self, sequence, candidates, t):
        return np.zeros(len(candidates) + 1)


class TestRecommenderBase:
    def test_recommend_before_fit_raises(self, tiny_split):
        model = ConstantScorer()
        sequence = tiny_split.full_sequence(0)
        with pytest.raises(NotFittedError):
            model.recommend(sequence, [0, 1], 3, 2)

    def test_recommend_orders_by_score(self, tiny_split):
        model = ConstantScorer().fit(tiny_split)
        sequence = tiny_split.full_sequence(0)
        assert model.recommend(sequence, [2, 5, 1], 3, 3) == [5, 2, 1]

    def test_recommend_truncates_to_k(self, tiny_split):
        model = ConstantScorer().fit(tiny_split)
        sequence = tiny_split.full_sequence(0)
        assert model.recommend(sequence, [2, 5, 1], 3, 2) == [5, 2]

    def test_k_larger_than_candidates(self, tiny_split):
        model = ConstantScorer().fit(tiny_split)
        sequence = tiny_split.full_sequence(0)
        assert model.recommend(sequence, [1], 3, 10) == [1]

    def test_empty_candidates(self, tiny_split):
        model = ConstantScorer().fit(tiny_split)
        assert model.recommend(tiny_split.full_sequence(0), [], 3, 5) == []

    def test_nonpositive_k_rejected(self, tiny_split):
        model = ConstantScorer().fit(tiny_split)
        with pytest.raises(EvaluationError, match="k must be positive"):
            model.recommend(tiny_split.full_sequence(0), [1], 3, 0)

    def test_tie_break_is_candidate_order(self, tiny_split):
        class AllEqual(ConstantScorer):
            def score(self, sequence, candidates, t):
                return np.zeros(len(candidates))

        model = AllEqual().fit(tiny_split)
        sequence = tiny_split.full_sequence(0)
        assert model.recommend(sequence, [4, 2, 7], 3, 3) == [4, 2, 7]

    def test_score_length_mismatch_detected(self, tiny_split):
        model = BrokenScorer().fit(tiny_split)
        with pytest.raises(EvaluationError, match="scores"):
            model.recommend(tiny_split.full_sequence(0), [1, 2], 3, 2)

    def test_window_config_recorded(self, tiny_split):
        window = WindowConfig(window_size=20, min_gap=3)
        model = ConstantScorer().fit(tiny_split, window)
        assert model.window_config is window


class TestRandomRecommender:
    def test_deterministic_given_seed(self, tiny_split):
        sequence = tiny_split.full_sequence(0)
        first = RandomRecommender(random_state=3).fit(tiny_split)
        second = RandomRecommender(random_state=3).fit(tiny_split)
        assert first.recommend(sequence, [0, 1, 2], 3, 3) == second.recommend(
            sequence, [0, 1, 2], 3, 3
        )

    def test_produces_permutations(self, tiny_split):
        model = RandomRecommender(random_state=1).fit(tiny_split)
        sequence = tiny_split.full_sequence(0)
        seen = {
            tuple(model.recommend(sequence, [0, 1, 2], 3, 3)) for _ in range(50)
        }
        assert len(seen) > 1
        for permutation in seen:
            assert sorted(permutation) == [0, 1, 2]


class TestPopRecommender:
    def test_ranks_by_training_frequency(self, tiny_split):
        model = PopRecommender().fit(tiny_split)
        sequence = tiny_split.full_sequence(0)
        # Training halves: u0=[0,1,0], u1=[3,4,3], u2=[5,5,5], u3=[0,1,2].
        # freq: 0->3, 1->2, 3->2, 5->3, 4->1, 2->1.
        assert model.recommend(sequence, [0, 1, 4], 3, 3) == [0, 1, 4]
        assert model.recommend(sequence, [4, 5], 3, 2) == [5, 4]

    def test_does_not_see_test_data(self, tiny_split):
        model = PopRecommender().fit(tiny_split)
        # Item 2 appears once in training (user 3 prefix); its extra
        # occurrence in user 0's test suffix must not count.
        scores = model.score(tiny_split.full_sequence(0), [2, 4], 3)
        assert scores[0] == pytest.approx(scores[1])  # both ln(2)

    def test_out_of_vocab_candidate_rejected(self, tiny_split):
        model = PopRecommender().fit(tiny_split)
        with pytest.raises(EvaluationError, match="vocabulary"):
            model.score(tiny_split.full_sequence(0), [999], 3)


class TestRecencyRecommender:
    def test_more_recent_scores_higher(self, tiny_split):
        model = RecencyRecommender().fit(tiny_split)
        sequence = ConsumptionSequence(0, [7, 3, 5])
        scores = model.score(sequence, [7, 3, 5], 3)
        assert scores[2] > scores[1] > scores[0]

    def test_never_consumed_ranks_last(self, tiny_split):
        model = RecencyRecommender().fit(tiny_split)
        sequence = ConsumptionSequence(0, [7, 3])
        ranked = model.recommend(sequence, [9, 7], 2, 2)
        assert ranked == [7, 9]

    def test_weight_matches_paper_formula(self):
        assert RecencyRecommender.weight(3) == pytest.approx(np.exp(-3))
        with pytest.raises(ValueError):
            RecencyRecommender.weight(0)

    def test_exp_scores_monotone_with_fast_scores(self, tiny_split):
        model = RecencyRecommender().fit(tiny_split)
        sequence = ConsumptionSequence(0, [1, 2, 3, 1, 2])
        fast = model.score(sequence, [1, 2, 3], 5)
        literal = model.score_with_exp(sequence, [1, 2, 3], 5)
        assert np.argsort(fast).tolist() == np.argsort(literal).tolist()
