"""Consistent-hash ring invariants: determinism, balance, minimal movement."""

from __future__ import annotations

import pytest

from repro.cluster.ring import HashRing, moved_users
from repro.exceptions import ServingError

USERS = list(range(500))


class TestConstruction:
    def test_requires_shards(self) -> None:
        with pytest.raises(ServingError, match="at least one shard"):
            HashRing([])

    def test_rejects_duplicates(self) -> None:
        with pytest.raises(ServingError, match="duplicate"):
            HashRing(["a", "b", "a"])

    def test_rejects_bad_vnodes(self) -> None:
        with pytest.raises(ServingError, match="vnodes"):
            HashRing(["a"], vnodes=0)

    def test_name_order_is_irrelevant(self) -> None:
        assert HashRing(["b", "a", "c"]) == HashRing(["c", "a", "b"])


class TestOwnership:
    def test_deterministic_across_instances(self) -> None:
        one = HashRing(["shard-0", "shard-1", "shard-2"])
        two = HashRing(["shard-0", "shard-1", "shard-2"])
        assert [one.owner(u) for u in USERS] == [two.owner(u) for u in USERS]

    def test_single_shard_owns_everything(self) -> None:
        ring = HashRing(["only"])
        assert all(ring.owner(u) == "only" for u in USERS)

    def test_assignment_partitions_users(self) -> None:
        ring = HashRing([f"shard-{i}" for i in range(4)])
        groups = ring.assignment(USERS)
        assert sorted(u for users in groups.values() for u in users) == USERS
        # Every shard takes a non-trivial share: vnodes spread the load.
        for users in groups.values():
            assert len(users) > len(USERS) // 20

    def test_contains_and_len(self) -> None:
        ring = HashRing(["a", "b"])
        assert "a" in ring and "missing" not in ring
        assert len(ring) == 2


class TestMembershipChanges:
    def test_removal_moves_only_the_removed_shards_users(self) -> None:
        before = HashRing([f"shard-{i}" for i in range(4)])
        removed = "shard-2"
        after = before.without(removed)
        orphaned = set(before.assignment(USERS)[removed])
        assert set(moved_users(before, after, USERS)) == orphaned
        # And they spread over the survivors, not onto one scapegoat.
        new_owners = {after.owner(u) for u in orphaned}
        assert len(new_owners) > 1

    def test_addition_is_inverse_of_removal(self) -> None:
        small = HashRing(["shard-0", "shard-1"])
        grown = small.with_shard("shard-2")
        assert grown == HashRing(["shard-0", "shard-1", "shard-2"])
        assert grown.without("shard-2") == small

    def test_without_unknown_raises(self) -> None:
        with pytest.raises(ServingError, match="not on the ring"):
            HashRing(["a"]).without("b")

    def test_with_existing_raises(self) -> None:
        with pytest.raises(ServingError, match="already on the ring"):
            HashRing(["a"]).with_shard("a")

    def test_survivors_keep_their_users(self) -> None:
        before = HashRing([f"shard-{i}" for i in range(5)])
        after = before.without("shard-0")
        for user in USERS:
            if before.owner(user) != "shard-0":
                assert after.owner(user) == before.owner(user)
