"""The autotuner: enumeration, cost model, journal, and resume identity.

The measured-validation layer is substituted with a deterministic fake
workload (measurements derived from the candidate's canonical key), so
these tests cover the *search machinery* — candidate canonicalization,
cost-model ranking, default-first validation, budget handling, and the
kill/resume contract — without paying for real paced replays (the real
measurement path is exercised by ``benchmarks/test_bench_autotune.py``
and the tune-smoke CI job).
"""

from __future__ import annotations

import hashlib
import json
import time

import pytest

from repro.exceptions import TuningError
from repro.tuning.autotune import (
    TUNE_JOURNAL_VERSION,
    AutoTuner,
    TuneJournal,
    candidate_key,
)
from repro.tuning.cost import CostModel, WorkloadShape
from repro.tuning.defaults import defaults_for
from repro.tuning.probe import MachineProbe

PROBE = MachineProbe(
    cpu_count=4,
    kernel_overhead_us=50.0,
    kernel_us_per_row=0.5,
    probe_batch_sizes=(1, 4, 16, 64),
    probe_kernel_us=(80.0, 170.0, 560.0, 2100.0),
    probe_candidate_width=64.0,
    bytes_per_user={"dict": 2048.0, "arena": 400.0, "arena-mmap": 8.0},
    fork_startup_ms=8.0,
    mem_available_bytes=8e9,
    probe_s=0.5,
)

SHAPE = WorkloadShape(
    calm_rate_hz=400.0,
    burst_size=16,
    calm_between=32,
    candidates_per_request=64.0,
    requests=200,
    active_users=4,
)


class FakeWorkload:
    """Deterministic stand-in: measurement is a pure hash of the knobs."""

    shape = SHAPE

    def __init__(self, fail_after: int | None = None, sleep_s: float = 0.0):
        self.calls: list[dict] = []
        self.fail_after = fail_after
        self.sleep_s = sleep_s

    def measure(self, knobs, reps: int = 1):
        if self.fail_after is not None and len(self.calls) >= self.fail_after:
            raise RuntimeError("simulated kill")
        self.calls.append(dict(knobs))
        if self.sleep_s:
            time.sleep(self.sleep_s)
        digest = hashlib.sha256(candidate_key(knobs).encode()).hexdigest()
        return {
            "p99_ms": 1.0 + int(digest[:8], 16) / 0xFFFFFFFF,
            "p50_ms": 0.5,
        }


class TestEnumeration:
    def test_deterministic_and_canonical(self, tmp_path) -> None:
        first = AutoTuner(subsystem="serving").enumerate_candidates()
        second = AutoTuner(subsystem="serving").enumerate_candidates()
        assert first == second
        keys = [candidate_key(c) for c in first]
        assert len(keys) == len(set(keys))
        defaults = defaults_for("serving")
        for candidate in first:
            if candidate["batching"] == "inflight":
                # In-flight candidates never vary micro-batch knobs.
                assert candidate["max_batch"] == defaults["max_batch"]
                assert candidate["max_wait_ms"] == defaults["max_wait_ms"]
            else:
                assert candidate["check_interval"] == defaults["check_interval"]
                assert (
                    candidate["max_inflight_rows"]
                    == defaults["max_inflight_rows"]
                )

    def test_default_config_is_a_candidate(self) -> None:
        candidates = AutoTuner(subsystem="serving").enumerate_candidates()
        assert defaults_for("serving") in candidates

    def test_cluster_candidates_have_no_microbatch_sizing(self) -> None:
        for candidate in AutoTuner(subsystem="cluster").enumerate_candidates():
            assert "max_batch" not in candidate
            assert "max_wait_ms" not in candidate

    def test_training_workers_capped_to_cores(self) -> None:
        tuner = AutoTuner(subsystem="training", probe=PROBE)
        for candidate in tuner.enumerate_candidates():
            assert candidate["fit_workers"] <= PROBE.cpu_count

    def test_unknown_subsystem_rejected(self) -> None:
        with pytest.raises(TuningError, match="unknown subsystem"):
            AutoTuner(subsystem="networking")


class TestCostModel:
    def test_microbatch_single_pays_straggler_wait(self) -> None:
        model = CostModel(PROBE)
        inflight = model.predict_serving(defaults_for("serving"), SHAPE)
        micro = model.predict_serving(
            {**defaults_for("serving"), "batching": "microbatch"}, SHAPE
        )
        assert micro.p50_ms > inflight.p50_ms

    def test_longer_wait_predicts_worse_tail(self) -> None:
        model = CostModel(PROBE)
        base = {**defaults_for("serving"), "batching": "microbatch"}
        fast = model.predict_serving({**base, "max_wait_ms": 0.5}, SHAPE)
        slow = model.predict_serving({**base, "max_wait_ms": 10.0}, SHAPE)
        assert slow.p99_ms > fast.p99_ms

    def test_tiny_check_interval_repays_overhead(self) -> None:
        model = CostModel(PROBE)
        base = defaults_for("serving")
        chunky = model.predict_serving({**base, "check_interval": 4}, SHAPE)
        whole = model.predict_serving({**base, "check_interval": 64}, SHAPE)
        assert chunky.p99_ms > whole.p99_ms

    def test_dict_store_predicts_more_memory(self) -> None:
        model = CostModel(PROBE)
        base = defaults_for("serving")
        arena = model.predict_serving({**base, "store": "arena"}, SHAPE)
        dictionary = model.predict_serving({**base, "store": "dict"}, SHAPE)
        assert dictionary.mem_bytes > arena.mem_bytes

    def test_training_fork_startup_charged(self) -> None:
        model = CostModel(PROBE)
        base = defaults_for("training")
        big = dict(n_quadruples=1_000_000)
        solo = model.predict_training({**base, "fit_workers": 1}, **big)
        team = model.predict_training({**base, "fit_workers": 4}, **big)
        # On a build big enough to amortize startup, parallel wins...
        assert team.p99_ms < solo.p99_ms
        # ...but oversubscribing beyond the cores only adds startup.
        over = model.predict_training({**base, "fit_workers": 8}, **big)
        assert over.p99_ms > team.p99_ms
        # On a tiny build the charged startup makes workers a net loss —
        # which is exactly why the tuner measures rather than assumes.
        tiny_solo = model.predict_training(
            {**base, "fit_workers": 1}, n_quadruples=50_000
        )
        tiny_team = model.predict_training(
            {**base, "fit_workers": 4}, n_quadruples=50_000
        )
        assert tiny_team.p99_ms > tiny_solo.p99_ms

    def test_unknown_batching_rejected(self) -> None:
        with pytest.raises(TuningError, match="batching"):
            CostModel(PROBE).predict_serving(
                {**defaults_for("serving"), "batching": "warp"}, SHAPE
            )


class TestJournal:
    def test_round_trip(self, tmp_path) -> None:
        path = tmp_path / "tune.journal.json"
        journal = TuneJournal(path, "serving")
        journal.set_probe(PROBE.as_dict())
        journal.record("k1", {"check_interval": 16}, {"p99_ms": 1.5})
        loaded = TuneJournal.load(path, "serving")
        assert loaded.created == journal.created
        assert loaded.probe == PROBE.as_dict()
        assert loaded.measurement_of("k1") == {"p99_ms": 1.5}
        assert loaded.measurement_of("k2") is None

    def test_subsystem_mismatch_rejected(self, tmp_path) -> None:
        path = tmp_path / "tune.journal.json"
        TuneJournal(path, "serving").save()
        with pytest.raises(TuningError, match="cannot resume"):
            TuneJournal.load(path, "training")

    def test_corrupt_journal_rejected(self, tmp_path) -> None:
        path = tmp_path / "tune.journal.json"
        path.write_text("{broken")
        with pytest.raises(TuningError, match="corrupt"):
            TuneJournal.load(path, "serving")

    def test_version_mismatch_rejected(self, tmp_path) -> None:
        path = tmp_path / "tune.journal.json"
        journal = TuneJournal(path, "serving")
        journal.save()
        payload = json.loads(path.read_text())
        payload["journal_version"] = TUNE_JOURNAL_VERSION + 1
        path.write_text(json.dumps(payload))
        with pytest.raises(TuningError, match="version"):
            TuneJournal.load(path, "serving")


class TestAutoTuner:
    def _tuner(self, tmp_path, workload, **kwargs):
        return AutoTuner(
            subsystem="serving",
            workload=workload,
            probe=PROBE,
            journal_path=tmp_path / "tune.journal.json",
            **kwargs,
        )

    def test_default_config_always_validated_first(self, tmp_path) -> None:
        workload = FakeWorkload()
        tuner = self._tuner(tmp_path, workload, top_k=3)
        tuner.run()
        assert workload.calls[0] == defaults_for("serving")
        assert len(tuner.results) <= 1 + 3

    def test_winner_is_measured_argmin(self, tmp_path) -> None:
        workload = FakeWorkload()
        tuner = self._tuner(tmp_path, workload, top_k=4)
        profile = tuner.run()
        best = min(tuner.results, key=lambda r: r.measured["p99_ms"])
        assert profile.knobs_for("serving") == best.knobs
        assert (
            profile.validation_for("serving")["p99_ms"]
            == best.measured["p99_ms"]
        )

    def test_budget_always_measures_default(self, tmp_path) -> None:
        workload = FakeWorkload(sleep_s=0.02)
        tuner = self._tuner(tmp_path, workload, top_k=5, budget_s=0.01)
        tuner.run()
        assert len(workload.calls) >= 1
        assert len(workload.calls) < 6
        assert workload.calls[0] == defaults_for("serving")

    def test_resume_reuses_all_measurements(self, tmp_path) -> None:
        first = FakeWorkload()
        tuner = self._tuner(tmp_path, first, top_k=3)
        profile_a = tuner.run()
        path_a = tmp_path / "a.json"
        profile_a.save(path_a)

        second = FakeWorkload()
        resumed = self._tuner(tmp_path, second, top_k=3, resume=True)
        profile_b = resumed.run()
        path_b = tmp_path / "b.json"
        profile_b.save(path_b)

        assert second.calls == []  # nothing re-measured
        assert resumed.n_reused == len(tuner.results)
        assert path_b.read_bytes() == path_a.read_bytes()

    def test_kill_then_resume_completes_identically(self, tmp_path) -> None:
        # Run A: the reference uninterrupted tune (its own journal).
        ref_dir = tmp_path / "ref"
        ref_dir.mkdir()
        reference = self._tuner(ref_dir, FakeWorkload(), top_k=3)
        profile_ref = reference.run()

        # Run B: killed after two measurements, then resumed.
        killed = FakeWorkload(fail_after=2)
        tuner = self._tuner(tmp_path, killed, top_k=3)
        with pytest.raises(RuntimeError, match="simulated kill"):
            tuner.run()
        assert len(killed.calls) == 2

        survivor = FakeWorkload()
        resumed = self._tuner(tmp_path, survivor, top_k=3, resume=True)
        profile = resumed.run()
        assert resumed.n_reused == 2
        # Only the remaining candidates were measured after the kill.
        assert len(survivor.calls) == len(resumed.results) - 2
        # Identical choice + measurements as the uninterrupted run
        # (created timestamps differ across journals, knobs must not).
        assert profile.knobs_for("serving") == profile_ref.knobs_for("serving")
        assert (
            profile.validation_for("serving")
            == profile_ref.validation_for("serving")
        )
        assert profile.machine == profile_ref.machine

    def test_resume_requires_journal(self) -> None:
        with pytest.raises(TuningError, match="journal"):
            AutoTuner(subsystem="serving", resume=True)

    def test_worst_candidate_is_worst_predicted(self, tmp_path) -> None:
        tuner = self._tuner(tmp_path, FakeWorkload(), top_k=2)
        tuner.run()
        worst = tuner.worst_candidate()
        worst_key = candidate_key(worst)
        worst_p99 = tuner.predictions[worst_key].p99_ms
        assert worst_p99 == max(p.p99_ms for p in tuner.predictions.values())

    def test_predicted_ranking_prefers_inflight_defaults(self, tmp_path) -> None:
        # Sanity: with this probe the model must rank some in-flight
        # config above the 10ms-straggler micro-batch corner.
        tuner = self._tuner(tmp_path, FakeWorkload(), top_k=3)
        tuner.run()
        worst = tuner.worst_candidate()
        assert worst["batching"] == "microbatch"
        assert worst["max_wait_ms"] == 10.0
