"""Consistency checks between code, docs, and the benchmark suite.

These guard the reproduction contract: every registered paper artifact
must be documented in DESIGN.md and EXPERIMENTS.md and have a benchmark
that regenerates it; every public module must carry a docstring.
"""

import importlib
import pkgutil
from pathlib import Path

import pytest

import repro
from repro.experiments.registry import available_experiments

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestArtifactCoverage:
    def test_every_artifact_has_a_bench(self):
        bench_dir = REPO_ROOT / "benchmarks"
        bench_text = "\n".join(
            path.read_text() for path in bench_dir.glob("test_bench_*.py")
        )
        for experiment_id in available_experiments():
            assert f'"{experiment_id}"' in bench_text, (
                f"no benchmark regenerates {experiment_id}"
            )

    @pytest.mark.parametrize("doc_name", ["DESIGN.md", "EXPERIMENTS.md"])
    def test_every_artifact_documented(self, doc_name):
        text = (REPO_ROOT / doc_name).read_text().lower()
        for experiment_id in available_experiments():
            # "fig5" is written as "fig 5" in prose headings.
            spaced = experiment_id.replace("fig", "fig ").replace(
                "table", "table "
            )
            assert experiment_id in text or spaced in text, (
                f"{experiment_id} missing from {doc_name}"
            )

    def test_readme_mentions_each_example(self):
        readme = (REPO_ROOT / "README.md").read_text()
        for example in (REPO_ROOT / "examples").glob("*.py"):
            assert example.name in readme, (
                f"{example.name} not referenced in README.md"
            )


class TestDocstrings:
    def test_every_public_module_has_a_docstring(self):
        missing = []
        package_path = Path(repro.__file__).parent
        for module_info in pkgutil.walk_packages(
            [str(package_path)], prefix="repro."
        ):
            module = importlib.import_module(module_info.name)
            if not (module.__doc__ or "").strip():
                missing.append(module_info.name)
        assert not missing, f"modules without docstrings: {missing}"

    def test_every_public_model_class_documented(self):
        from repro import models

        for name in models.__all__:
            cls = getattr(models, name)
            assert (cls.__doc__ or "").strip(), f"{name} lacks a docstring"
