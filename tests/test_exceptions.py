"""Tests for the exception hierarchy."""

import pytest

from repro.exceptions import (
    ConvergenceError,
    DataError,
    EvaluationError,
    ExperimentError,
    FeatureError,
    ModelError,
    NotFittedError,
    ReproError,
    SamplingError,
    SplitError,
    VocabularyError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exception_class",
        [
            DataError,
            FeatureError,
            SamplingError,
            ModelError,
            ConvergenceError,
            EvaluationError,
            ExperimentError,
        ],
    )
    def test_all_derive_from_repro_error(self, exception_class):
        assert issubclass(exception_class, ReproError)

    def test_vocabulary_error_is_data_error(self):
        assert issubclass(VocabularyError, DataError)

    def test_split_error_is_data_error(self):
        assert issubclass(SplitError, DataError)

    def test_not_fitted_is_model_error(self):
        assert issubclass(NotFittedError, ModelError)

    def test_catching_the_base_class_works(self):
        with pytest.raises(ReproError):
            raise NotFittedError("model not fitted")

    def test_errors_carry_messages(self):
        error = SamplingError("nothing to sample")
        assert "nothing to sample" in str(error)
