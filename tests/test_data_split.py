"""Tests for repro.data.split."""

import pytest

from repro.config import SplitConfig
from repro.data.dataset import Dataset
from repro.data.split import SplitDataset, temporal_split
from repro.exceptions import SplitError


class TestTemporalSplit:
    def test_boundary_is_70_percent_floor(self):
        dataset = Dataset.from_user_items([list(range(10)) * 30], n_items=10)
        split = temporal_split(
            dataset, SplitConfig(train_fraction=0.7, min_train_length=10)
        )
        assert split.train_boundary(0) == 210

    def test_filters_short_users(self):
        long_user = [0, 1] * 100   # 200 events -> train 140
        short_user = [0, 1] * 10   # 20 events -> train 14 < 100
        dataset = Dataset.from_user_items([long_user, short_user], n_items=2)
        split = temporal_split(dataset)
        assert split.n_users == 1
        assert len(split.full_sequence(0)) == 200

    def test_raises_when_no_user_survives(self):
        dataset = Dataset.from_user_items([[0, 1, 2]], n_items=3)
        with pytest.raises(SplitError, match="no user satisfies"):
            temporal_split(dataset)

    def test_train_test_partition(self, tiny_split):
        for user in range(tiny_split.n_users):
            full = tiny_split.full_sequence(user)
            train = tiny_split.train_sequence(user)
            test = tiny_split.test_sequence(user)
            assert len(train) + len(test) == len(full)
            assert train.concat(test) == full

    def test_train_dataset_contains_only_prefixes(self, tiny_split):
        train = tiny_split.train_dataset()
        for user in range(tiny_split.n_users):
            assert len(train.sequence(user)) == tiny_split.train_boundary(user)

    def test_consumption_counts(self, tiny_split):
        total = tiny_split.n_train_consumptions() + tiny_split.n_test_consumptions()
        assert total == tiny_split.dataset.n_consumptions()

    def test_paper_filter_on_realistic_data(self, gowalla_dataset):
        split = temporal_split(gowalla_dataset)
        for user in range(split.n_users):
            assert split.train_boundary(user) >= 100


class TestSplitDatasetValidation:
    def test_rejects_wrong_boundary_count(self, tiny_dataset):
        with pytest.raises(SplitError, match="boundaries"):
            SplitDataset(dataset=tiny_dataset, boundaries=(1,))

    def test_rejects_out_of_range_boundary(self, tiny_dataset):
        with pytest.raises(SplitError, match="outside"):
            SplitDataset(dataset=tiny_dataset, boundaries=(0, 3, 3, 3))

    def test_rejects_boundary_past_end(self, tiny_dataset):
        with pytest.raises(SplitError, match="outside"):
            SplitDataset(dataset=tiny_dataset, boundaries=(7, 3, 3, 3))
