"""Tests for repro.features.vectorizer and the feature registry."""

import numpy as np
import pytest

from repro.config import FEATURE_NAMES, WindowConfig
from repro.exceptions import FeatureError, NotFittedError
from repro.features.base import (
    FeatureExtractor,
    available_features,
    create_feature,
    register_feature,
    unregister_feature,
)
from repro.features.vectorizer import BehavioralFeatureModel
from repro.windows.window import window_before

WINDOW = WindowConfig(window_size=10, min_gap=2)


class TestRegistry:
    def test_builtins_registered(self):
        names = available_features()
        for name in FEATURE_NAMES:
            assert name in names

    def test_create_unknown_raises(self):
        with pytest.raises(FeatureError, match="unknown feature"):
            create_feature("nope")

    def test_register_custom_and_unregister(self):
        class Constant(FeatureExtractor):
            name = "constant_half"

            def fit(self, train_dataset, window):
                return self

            def value(self, sequence, item, t, window):
                return 0.5

        register_feature("constant_half", Constant)
        try:
            assert isinstance(create_feature("constant_half"), Constant)
            with pytest.raises(FeatureError, match="already registered"):
                register_feature("constant_half", Constant)
            register_feature("constant_half", Constant, overwrite=True)
        finally:
            unregister_feature("constant_half")
        assert "constant_half" not in available_features()

    def test_register_empty_name_rejected(self):
        with pytest.raises(FeatureError):
            register_feature("", lambda: None)  # type: ignore[arg-type]


class TestBehavioralFeatureModel:
    def test_default_uses_paper_features_in_order(self):
        model = BehavioralFeatureModel()
        assert model.feature_names == FEATURE_NAMES
        assert model.n_features == 4

    def test_vector_before_fit_raises(self, tiny_dataset):
        model = BehavioralFeatureModel()
        with pytest.raises(NotFittedError):
            model.vector(tiny_dataset.sequence(0), 0, 3)

    def test_vector_values_in_unit_interval(self, tiny_dataset):
        model = BehavioralFeatureModel().fit(tiny_dataset, WINDOW)
        sequence = tiny_dataset.sequence(0)
        for t in range(1, len(sequence)):
            for item in sequence.distinct_items():
                vector = model.vector(sequence, int(item), t)
                assert vector.shape == (4,)
                assert np.all(vector >= 0.0) and np.all(vector <= 1.0)

    def test_matrix_matches_vectors(self, tiny_dataset):
        model = BehavioralFeatureModel().fit(tiny_dataset, WINDOW)
        sequence = tiny_dataset.sequence(0)
        items = [0, 1, 2]
        matrix = model.matrix(sequence, items, 4)
        for row, item in enumerate(items):
            assert np.allclose(matrix[row], model.vector(sequence, item, 4))

    def test_matrix_accepts_shared_window(self, tiny_dataset):
        model = BehavioralFeatureModel().fit(tiny_dataset, WINDOW)
        sequence = tiny_dataset.sequence(0)
        window = window_before(sequence, 4, WINDOW.window_size)
        direct = model.matrix(sequence, [0, 1], 4)
        shared = model.matrix(sequence, [0, 1], 4, window)
        assert np.allclose(direct, shared)

    def test_subset_of_features(self, tiny_dataset):
        model = BehavioralFeatureModel(["recency", "item_quality"]).fit(
            tiny_dataset, WINDOW
        )
        assert model.feature_names == ("recency", "item_quality")
        vector = model.vector(tiny_dataset.sequence(0), 0, 3)
        assert vector.shape == (2,)

    def test_recency_kind_forwarded(self, tiny_dataset):
        hyper = BehavioralFeatureModel(["recency"], recency_kind="hyperbolic")
        expo = BehavioralFeatureModel(["recency"], recency_kind="exponential")
        hyper.fit(tiny_dataset, WINDOW)
        expo.fit(tiny_dataset, WINDOW)
        sequence = tiny_dataset.sequence(0)  # 0 1 0 2 0 1
        # gap to last 0 at t=3 is 1 -> both 1/1 and e^-1 differ.
        h = hyper.vector(sequence, 0, 3)[0]
        e = expo.vector(sequence, 0, 3)[0]
        assert h == pytest.approx(1.0)
        assert e == pytest.approx(np.exp(-1))

    def test_extractor_lookup(self, tiny_dataset):
        model = BehavioralFeatureModel().fit(tiny_dataset, WINDOW)
        assert model.extractor("recency").name == "recency"
        with pytest.raises(KeyError):
            model.extractor("missing")
