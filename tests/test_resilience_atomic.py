"""Tests for repro.resilience.atomic and repro.resilience.faults."""

import json
import os

import pytest

from repro.resilience.atomic import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    atomic_writer,
    sha256_bytes,
    sha256_file,
)
from repro.resilience.faults import CrashingFile, FaultInjected, FaultInjector


def _no_temp_litter(directory):
    return [p.name for p in directory.iterdir() if p.name.endswith(".tmp")] == []


class TestAtomicWrites:
    def test_write_text_creates_file_and_parents(self, tmp_path):
        target = tmp_path / "deep" / "nested" / "out.txt"
        atomic_write_text(target, "hello")
        assert target.read_text() == "hello"
        assert _no_temp_litter(target.parent)

    def test_write_replaces_existing(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"

    def test_write_json_round_trip(self, tmp_path):
        target = tmp_path / "doc.json"
        atomic_write_json(target, {"a": [1, 2], "b": "x"})
        assert json.loads(target.read_text()) == {"a": [1, 2], "b": "x"}

    def test_failed_write_leaves_target_untouched(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "committed")
        injector = FaultInjector(crash_on_write=1)
        with pytest.raises(FaultInjected):
            atomic_write_text(target, "torn", fault_injector=injector)
        assert target.read_text() == "committed"
        assert _no_temp_litter(tmp_path)

    def test_exception_in_writer_body_cleans_up(self, tmp_path):
        target = tmp_path / "out.bin"
        with pytest.raises(RuntimeError):
            with atomic_writer(target) as handle:
                handle.write(b"partial")
                raise RuntimeError("boom")
        assert not target.exists()
        assert _no_temp_litter(tmp_path)

    def test_torn_write_never_replaces_target(self, tmp_path):
        """A mid-payload crash (CrashingFile) leaves the old file whole."""
        target = tmp_path / "out.bin"
        atomic_write_bytes(target, b"0123456789")
        with pytest.raises(FaultInjected):
            with atomic_writer(target) as handle:
                torn = CrashingFile(handle, crash_after_bytes=4)
                torn.write(b"ABCDEFGHIJ")
        assert target.read_bytes() == b"0123456789"
        assert _no_temp_litter(tmp_path)


class TestChecksums:
    def test_bytes_and_file_agree(self, tmp_path):
        payload = b"some payload"
        path = tmp_path / "f.bin"
        path.write_bytes(payload)
        assert sha256_bytes(payload) == sha256_file(path)

    def test_different_payloads_differ(self):
        assert sha256_bytes(b"a") != sha256_bytes(b"b")


class TestFaultInjector:
    def test_crash_at_exact_update(self):
        injector = FaultInjector(crash_at_update=3)
        injector.on_update()
        injector.on_update()
        with pytest.raises(FaultInjected, match="update 3"):
            injector.on_update()
        assert injector.updates_seen == 3

    def test_crash_on_exact_write(self):
        injector = FaultInjector(crash_on_write=2)
        injector.on_write()
        with pytest.raises(FaultInjected, match="write 2"):
            injector.on_write()

    def test_fires_once_until_reset(self):
        injector = FaultInjector(crash_at_update=1)
        with pytest.raises(FaultInjected):
            injector.on_update()
        injector.on_update()  # counter moved past the trigger
        injector.reset()
        with pytest.raises(FaultInjected):
            injector.on_update()

    def test_disarm(self):
        injector = FaultInjector(crash_at_update=1, crash_on_write=1)
        injector.disarm()
        injector.on_update()
        injector.on_write()

    def test_from_seed_deterministic(self):
        a = FaultInjector.from_seed(7, max_update=100, max_write=10)
        b = FaultInjector.from_seed(7, max_update=100, max_write=10)
        assert a.crash_at_update == b.crash_at_update
        assert a.crash_on_write == b.crash_on_write
        assert 1 <= a.crash_at_update <= 100
        assert 1 <= a.crash_on_write <= 10

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultInjector(crash_at_update=0)
        with pytest.raises(ValueError):
            FaultInjector(crash_on_write=-1)
        with pytest.raises(ValueError):
            CrashingFile(handle=None, crash_after_bytes=-1)

    def test_not_a_repro_error(self):
        from repro.exceptions import ReproError

        assert not issubclass(FaultInjected, ReproError)


class TestCrashingFile:
    def test_partial_bytes_reach_handle(self, tmp_path):
        path = tmp_path / "torn.bin"
        with open(path, "wb") as handle:
            torn = CrashingFile(handle, crash_after_bytes=4)
            with pytest.raises(FaultInjected):
                torn.write(b"ABCDEFGH")
        assert path.read_bytes() == b"ABCD"

    def test_within_budget_passes_through(self, tmp_path):
        path = tmp_path / "ok.bin"
        with open(path, "wb") as handle:
            torn = CrashingFile(handle, crash_after_bytes=100)
            assert torn.write(b"ABCD") == 4
            torn.flush()
        assert path.read_bytes() == b"ABCD"


class TestAtomicityUnderRepeatedFaults:
    def test_every_write_crash_point_recovers(self, tmp_path):
        """Whatever write the crash hits, the committed file stays valid."""
        target = tmp_path / "doc.json"
        atomic_write_json(target, {"generation": 0})
        for write_number in range(1, 4):
            injector = FaultInjector(crash_on_write=write_number)
            generation = None
            for attempt in range(1, 4):
                try:
                    atomic_write_json(
                        target,
                        {"generation": attempt},
                        fault_injector=injector,
                    )
                    generation = attempt
                except FaultInjected:
                    continue
            payload = json.loads(target.read_text())
            # The surviving document is always one that a successful
            # write produced, never a torn mix.
            assert payload["generation"] in (0, generation)
            assert _no_temp_litter(tmp_path)
