"""Tests for repro.resilience.journal — the experiment run journal."""

import json

import pytest

from repro.exceptions import ExperimentError
from repro.resilience.journal import JOURNAL_VERSION, RunJournal


class TestLifecycle:
    def test_unknown_experiment_is_pending(self, tmp_path):
        journal = RunJournal(tmp_path / "j.json")
        assert journal.status_of("fig5") == "pending"

    def test_mark_persists_atomically(self, tmp_path):
        path = tmp_path / "j.json"
        journal = RunJournal(path)
        journal.mark("fig5", "running")
        payload = json.loads(path.read_text())
        assert payload["journal_version"] == JOURNAL_VERSION
        assert payload["experiments"]["fig5"]["status"] == "running"

    def test_running_counts_attempts(self, tmp_path):
        journal = RunJournal(tmp_path / "j.json")
        journal.mark("fig5", "running")
        journal.mark("fig5", "failed", error="boom")
        journal.mark("fig5", "running")
        journal.mark("fig5", "done")
        entry = journal.entry("fig5")
        assert entry.attempts == 2
        assert entry.status == "done"
        assert entry.error is None  # cleared on success

    def test_failed_keeps_error(self, tmp_path):
        journal = RunJournal(tmp_path / "j.json")
        journal.mark("fig5", "running")
        journal.mark("fig5", "failed", error="ValueError: nope")
        assert journal.entry("fig5").error == "ValueError: nope"
        assert journal.failed_ids() == ["fig5"]

    def test_counts(self, tmp_path):
        journal = RunJournal(tmp_path / "j.json")
        journal.mark("a", "done")
        journal.mark("b", "done")
        journal.mark("c", "failed", error="x")
        counts = journal.counts()
        assert counts["done"] == 2
        assert counts["failed"] == 1
        assert counts["pending"] == 0
        assert len(journal) == 3

    def test_invalid_status_rejected(self, tmp_path):
        journal = RunJournal(tmp_path / "j.json")
        with pytest.raises(ExperimentError, match="unknown journal status"):
            journal.mark("fig5", "exploded")


class TestLoad:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "j.json"
        journal = RunJournal(path)
        journal.mark("fig5", "done")
        journal.mark("fig6", "running")
        journal.mark("fig6", "failed", error="boom")
        reloaded = RunJournal.load(path)
        assert reloaded.status_of("fig5") == "done"
        assert reloaded.entry("fig6").status == "failed"
        assert reloaded.entry("fig6").attempts == 1
        assert reloaded.entry("fig6").error == "boom"

    def test_missing_file_is_empty(self, tmp_path):
        journal = RunJournal.load(tmp_path / "absent.json")
        assert len(journal) == 0

    def test_truncated_file_raises(self, tmp_path):
        path = tmp_path / "j.json"
        RunJournal(path).mark("fig5", "done")
        path.write_text(path.read_text()[:10])
        with pytest.raises(ExperimentError, match="corrupt run journal"):
            RunJournal.load(path)

    def test_bad_version_raises(self, tmp_path):
        path = tmp_path / "j.json"
        path.write_text(json.dumps({"journal_version": 99, "experiments": {}}))
        with pytest.raises(ExperimentError, match="journal version"):
            RunJournal.load(path)

    def test_unknown_status_on_disk_raises(self, tmp_path):
        path = tmp_path / "j.json"
        path.write_text(json.dumps({
            "journal_version": JOURNAL_VERSION,
            "experiments": {"fig5": {"status": "weird", "attempts": 1}},
        }))
        with pytest.raises(ExperimentError, match="unknown status"):
            RunJournal.load(path)
