"""The online learning subsystem's core invariant, tier-1.

A model updated live, event by event, must be **bit-identical** —
:func:`~repro.online.trainer.fingerprint_params` digests — to one
rebuilt by replaying the WAL from scratch or from a mid-stream
checkpoint, for every supported model family, at any flush batch
window. Plus the guard rails: strict WAL-sequence ordering, fitted-model
requirements, config validation, and the serving wiring
(``ServiceConfig(online="isgd")`` through :func:`service_for_split`).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
import pytest

from conftest import SMALL_WINDOW

from repro.config import TSPPRConfig
from repro.data.split import SplitDataset
from repro.exceptions import OnlineError, ServingError
from repro.models.fpmc import FPMCRecommender
from repro.models.ppr import PPRRecommender
from repro.models.recency import RecencyRecommender
from repro.models.tsppr import TSPPRRecommender
from repro.online.adapters import adapter_for
from repro.online.trainer import OnlineTrainer, fingerprint_params
from repro.resilience.checkpoint import CheckpointManager
from repro.serving.events import EventLog
from repro.serving.service import (
    RecommendService,
    ServiceConfig,
    service_for_split,
)
from repro.serving.state import SessionStore

QUICK = TSPPRConfig(max_epochs=2000, seed=3)
QUICK_SHARED = TSPPRConfig(max_epochs=2000, seed=3, share_mapping=True)

#: Model families under test; fits are deterministic, so building the
#: same entry twice yields bit-identical starting factors.
MODEL_BUILDERS = {
    "tsppr": lambda split: TSPPRRecommender(QUICK).fit(split, SMALL_WINDOW),
    "tsppr-shared": lambda split: TSPPRRecommender(QUICK_SHARED).fit(
        split, SMALL_WINDOW
    ),
    "ppr": lambda split: PPRRecommender(QUICK).fit(split, SMALL_WINDOW),
    "fpmc": lambda split: FPMCRecommender(QUICK).fit(split, SMALL_WINDOW),
}

MODEL_KINDS = tuple(MODEL_BUILDERS)


def held_out_stream(split: SplitDataset, n_users: int = 6) -> List[Tuple[int, int]]:
    """Each user's held-out suffix, user-by-user (any order works)."""
    stream = []
    for user in range(min(n_users, split.n_users)):
        items = split.full_sequence(user).items[
            split.train_boundary(user):
        ].tolist()
        stream.extend((user, item) for item in items)
    return stream


def fresh_store(split: SplitDataset) -> SessionStore:
    """A lossless replay store over the split's training prefixes."""

    def base_history(user: int):
        if 0 <= user < split.n_users:
            return split.train_sequence(user)
        return None

    return SessionStore(
        SMALL_WINDOW.window_size,
        SMALL_WINDOW.min_gap,
        capacity=max(split.n_users, 1),
        history_provider=base_history,
    )


def online_config(**overrides) -> ServiceConfig:
    defaults = dict(window=SMALL_WINDOW, online="isgd", online_batch=7)
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def drive_live(
    split: SplitDataset, kind: str, log_path, **config_overrides
) -> str:
    """Serve the stream with live ISGD on; returns the model fingerprint."""
    model = MODEL_BUILDERS[kind](split)
    log = EventLog.open(log_path)
    config = online_config(n_items=split.n_items, **config_overrides)
    with service_for_split(
        model, split, event_log=log, config=config
    ) as service:
        for user, item in held_out_stream(split):
            service.step(user, item, k=5)
        return service.online_trainer.model_fingerprint()


def rebuild_by_replay(
    split: SplitDataset, kind: str, log_path, batch_window: int = 7
) -> str:
    """Refit + replay the whole WAL; returns the rebuilt fingerprint."""
    model = MODEL_BUILDERS[kind](split)
    trainer = OnlineTrainer(model, batch_window=batch_window)
    log = EventLog.open(log_path, readonly=True)
    trainer.replay(log.iter_events(), fresh_store(split))
    return trainer.model_fingerprint()


class TestReplayBitIdentity:
    @pytest.mark.parametrize("kind", MODEL_KINDS)
    def test_live_equals_full_replay(
        self, gowalla_split: SplitDataset, tmp_path, kind: str
    ) -> None:
        log_path = tmp_path / "wal.log"
        live = drive_live(gowalla_split, kind, log_path)
        rebuilt = rebuild_by_replay(gowalla_split, kind, log_path)
        assert rebuilt == live

    def test_batch_window_never_changes_parameters(
        self, gowalla_split: SplitDataset, tmp_path
    ) -> None:
        """Flush cadence is pure throughput: 1 == 7 == 64 == live."""
        log_path = tmp_path / "wal.log"
        live = drive_live(gowalla_split, "tsppr", log_path)
        fingerprints = {
            batch_window: rebuild_by_replay(
                gowalla_split, "tsppr", log_path, batch_window=batch_window
            )
            for batch_window in (1, 7, 64)
        }
        assert set(fingerprints.values()) == {live}

    @pytest.mark.parametrize("kind", ("tsppr", "fpmc"))
    def test_checkpoint_plus_wal_suffix(
        self, gowalla_split: SplitDataset, tmp_path, kind: str
    ) -> None:
        """Mid-stream checkpoint + remaining WAL == live, bit for bit."""
        split = gowalla_split
        stream = held_out_stream(split)
        cut = len(stream) // 2
        model = MODEL_BUILDERS[kind](split)
        manager = CheckpointManager(tmp_path / "ckpt")
        trainer = OnlineTrainer(
            model, batch_window=5, checkpoint_manager=manager
        )
        log = EventLog.open(tmp_path / "wal.log")
        config = online_config(n_items=split.n_items)
        with RecommendService(
            model,
            fresh_store(split),
            event_log=log,
            config=config,
            online_trainer=trainer,
        ) as service:
            for index, (user, item) in enumerate(stream):
                if index == cut:
                    trainer.checkpoint()
                service.step(user, item, k=5)
            live = trainer.model_fingerprint()

        # Restart path: fresh fit, restore the checkpoint, replay the log.
        model2 = MODEL_BUILDERS[kind](split)
        trainer2 = OnlineTrainer(
            model2,
            batch_window=64,  # different cadence on purpose
            checkpoint_manager=CheckpointManager(tmp_path / "ckpt"),
        )
        resumed_at = trainer2.load_latest()
        assert resumed_at > 0
        log2 = EventLog.open(tmp_path / "wal.log", readonly=True)
        trainer2.replay(log2.iter_events(), fresh_store(split))
        assert trainer2.model_fingerprint() == live

    def test_service_for_split_catchup_matches_live(
        self, gowalla_split: SplitDataset, tmp_path
    ) -> None:
        """A restarted service's catch-up replay lands on the live digest."""
        split = gowalla_split
        log_path = tmp_path / "wal.log"
        live = drive_live(split, "ppr", log_path)
        model = MODEL_BUILDERS["ppr"](split)
        log = EventLog.open(log_path)
        with service_for_split(
            model,
            split,
            event_log=log,
            config=online_config(n_items=split.n_items),
        ) as service:
            assert service.online_trainer.model_fingerprint() == live


class TestTrainerGuards:
    def test_wal_sequence_gap_raises(
        self, gowalla_split: SplitDataset
    ) -> None:
        model = MODEL_BUILDERS["ppr"](gowalla_split)
        trainer = OnlineTrainer(model)
        store = fresh_store(gowalla_split)
        session = store.get(0)
        with pytest.raises(OnlineError, match="diverged"):
            trainer.observe(3, 0, 0, session)

    def test_unfitted_model_rejected(self) -> None:
        with pytest.raises(OnlineError, match="fitted"):
            OnlineTrainer(PPRRecommender(QUICK))

    def test_unsupported_model_rejected(
        self, gowalla_split: SplitDataset
    ) -> None:
        model = RecencyRecommender().fit(gowalla_split, SMALL_WINDOW)
        with pytest.raises(OnlineError, match="no online update policy"):
            adapter_for(model, 0.05)

    def test_bad_hyperparameters_rejected(
        self, gowalla_split: SplitDataset
    ) -> None:
        model = MODEL_BUILDERS["ppr"](gowalla_split)
        with pytest.raises(OnlineError, match="learning_rate"):
            OnlineTrainer(model, learning_rate=0.0)
        with pytest.raises(OnlineError, match="batch_window"):
            OnlineTrainer(model, batch_window=0)

    def test_load_latest_only_before_events(
        self, gowalla_split: SplitDataset, tmp_path
    ) -> None:
        model = MODEL_BUILDERS["ppr"](gowalla_split)
        manager = CheckpointManager(tmp_path / "ckpt")
        trainer = OnlineTrainer(model, checkpoint_manager=manager)
        store = fresh_store(gowalla_split)
        session = store.get(0)
        trainer.observe(0, 0, int(session.sequence().items[0]), session)
        with pytest.raises(OnlineError, match="before any event"):
            trainer.load_latest()

    def test_checkpoint_requires_manager(
        self, gowalla_split: SplitDataset
    ) -> None:
        model = MODEL_BUILDERS["ppr"](gowalla_split)
        with pytest.raises(OnlineError, match="checkpoint manager"):
            OnlineTrainer(model).checkpoint()

    def test_fingerprint_sensitivity(self) -> None:
        """Different bytes, dtypes, or names must change the digest."""
        base = {"a": np.zeros(4), "b": np.ones(3)}
        assert fingerprint_params(base) == fingerprint_params(
            {name: arr.copy() for name, arr in base.items()}
        )
        tweaked = {"a": np.zeros(4), "b": np.ones(3)}
        tweaked["b"][1] = np.nextafter(tweaked["b"][1], 2.0)
        assert fingerprint_params(tweaked) != fingerprint_params(base)
        assert fingerprint_params(
            {"a": np.zeros(4, dtype=np.float32), "b": np.ones(3)}
        ) != fingerprint_params(base)


class TestServiceWiring:
    def test_config_validation(self) -> None:
        with pytest.raises(ServingError, match="online"):
            ServiceConfig(online="nope")
        with pytest.raises(ServingError, match="online_lr"):
            ServiceConfig(online_lr=0.0)
        with pytest.raises(ServingError, match="online_batch"):
            ServiceConfig(online_batch=0)

    def test_isgd_requires_trainer(
        self, gowalla_split: SplitDataset
    ) -> None:
        model = MODEL_BUILDERS["ppr"](gowalla_split)
        with pytest.raises(ServingError, match="online_trainer"):
            RecommendService(
                model,
                fresh_store(gowalla_split),
                config=online_config(n_items=gowalla_split.n_items),
            )

    def test_trainer_must_wrap_served_model(
        self, gowalla_split: SplitDataset
    ) -> None:
        served = MODEL_BUILDERS["ppr"](gowalla_split)
        other = MODEL_BUILDERS["ppr"](gowalla_split)
        with pytest.raises(ServingError, match="own model"):
            RecommendService(
                served,
                fresh_store(gowalla_split),
                config=online_config(n_items=gowalla_split.n_items),
                online_trainer=OnlineTrainer(other),
            )

    def test_online_metrics_surface_in_snapshot(
        self, gowalla_split: SplitDataset, tmp_path
    ) -> None:
        split = gowalla_split
        model = MODEL_BUILDERS["ppr"](split)
        log = EventLog.open(tmp_path / "wal.log")
        with service_for_split(
            model,
            split,
            event_log=log,
            config=online_config(n_items=split.n_items, online_batch=4),
        ) as service:
            for user, item in held_out_stream(split, n_users=3):
                service.step(user, item, k=5)
            snapshot = service.metrics_snapshot()
        counters = snapshot["counters"]
        assert counters["online_events"] > 0
        assert 0 < counters["online_updates"] <= counters["online_events"]
        gauges = snapshot["gauges"]
        assert gauges["online_buffered_updates"]["count"] > 0
        assert "online_flush_latency" in snapshot["latency"]

    def test_online_updates_change_the_served_model(
        self, gowalla_split: SplitDataset, tmp_path
    ) -> None:
        """With updates on, factors actually move off the frozen fit."""
        split = gowalla_split
        frozen = MODEL_BUILDERS["tsppr"](split)
        frozen_digest = fingerprint_params(
            adapter_for(frozen, 0.05).params()
        )
        live = drive_live(split, "tsppr", tmp_path / "wal.log")
        assert live != frozen_digest


class TestFastCaptureIdentity:
    """The capture fast path == the generic feature matrix, bitwise.

    TS-PPR capture prices its two feature rows through the engine's
    vectorized column fillers when every extractor has one. The
    replay-identity invariant only needs both sides to run the same
    code, but the *values* must still be the paper's features — so
    pin the fast rows to the generic
    :meth:`BehavioralFeatureModel.matrix` ones exactly, over a real
    walked serving session.
    """

    def test_fast_rows_match_generic_matrix(
        self, gowalla_split: SplitDataset
    ) -> None:
        from repro.windows.window import window_before

        model = MODEL_BUILDERS["tsppr"](gowalla_split)
        adapter = adapter_for(model, 0.05)
        assert adapter._fillers is not None, (
            "paper-default feature model should take the fast path"
        )
        store = fresh_store(gowalla_split)
        window_size = model.window_config.window_size
        checked = 0
        for user, item in held_out_stream(gowalla_split):
            session = store.get(user)
            if session.is_next_target(item):
                others = [c for c in session.candidates() if c != item]
                if others:
                    negative = int(others[0])
                    fast = adapter._feature_rows(session, int(item), negative)
                    sequence = session.sequence()
                    window = window_before(sequence, session.t, window_size)
                    slow = model.feature_model.matrix(
                        sequence, [int(item), negative], session.t, window
                    )
                    assert fast.tobytes() == slow.tobytes()
                    checked += 1
            session.append(item)
        assert checked > 20
