"""Tests for repro.experiments.storage."""

import json

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.registry import ExperimentResult
from repro.experiments.storage import (
    load_result,
    load_results_dir,
    result_from_dict,
    result_to_dict,
    save_result,
)


@pytest.fixture()
def result() -> ExperimentResult:
    return ExperimentResult(
        experiment_id="fig99",
        title="demo artifact",
        rows=({"Method": "Pop", "MaAP@10": 0.5},),
        series={"curve": ((1, 0.1), (2, 0.2))},
        notes=("a note",),
    )


class TestRoundTrip:
    def test_dict_round_trip(self, result):
        rebuilt = result_from_dict(result_to_dict(result))
        assert rebuilt.experiment_id == result.experiment_id
        assert rebuilt.title == result.title
        assert list(rebuilt.rows) == [dict(r) for r in result.rows]
        assert rebuilt.series["curve"] == ((1, 0.1), (2, 0.2))
        assert rebuilt.notes == result.notes

    def test_file_round_trip(self, result, tmp_path):
        path = save_result(result, tmp_path)
        assert path.name == "fig99.json"
        rebuilt = load_result(path)
        assert rebuilt.render() == result.render()

    def test_load_results_dir_sorted(self, result, tmp_path):
        save_result(result, tmp_path)
        other = ExperimentResult(experiment_id="fig01", title="earlier")
        save_result(other, tmp_path)
        loaded = load_results_dir(tmp_path)
        assert [r.experiment_id for r in loaded] == ["fig01", "fig99"]


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ExperimentError, match="no result"):
            load_result(tmp_path / "nope.json")

    def test_not_a_directory(self, tmp_path):
        with pytest.raises(ExperimentError, match="not a directory"):
            load_results_dir(tmp_path / "missing")

    def test_bad_version(self, result, tmp_path):
        path = save_result(result, tmp_path)
        payload = json.loads(path.read_text())
        payload["storage_version"] = 42
        path.write_text(json.dumps(payload))
        with pytest.raises(ExperimentError, match="version"):
            load_result(path)

    def test_missing_field(self):
        with pytest.raises(ExperimentError, match="missing field"):
            result_from_dict({"storage_version": 1, "title": "x"})


class TestCliIntegration:
    def test_json_dir_flag(self, tmp_path, capsys):
        from repro.cli import main

        json_dir = tmp_path / "archive"
        assert main([
            "run", "table4", "--scale", "smoke", "--json-dir", str(json_dir)
        ]) == 0
        loaded = load_result(json_dir / "table4.json")
        assert loaded.experiment_id == "table4"


class TestCorruptionDetection:
    def test_truncated_json(self, result, tmp_path):
        path = save_result(result, tmp_path)
        path.write_text(path.read_text()[:25])
        with pytest.raises(ExperimentError, match="corrupt result"):
            load_result(path)

    def test_checksum_detects_tampering(self, result, tmp_path):
        path = save_result(result, tmp_path)
        payload = json.loads(path.read_text())
        payload["title"] = "tampered"
        path.write_text(json.dumps(payload))
        with pytest.raises(ExperimentError, match="checksum"):
            load_result(path)

    def test_checksum_optional_for_legacy_documents(self, result):
        payload = result_to_dict(result)
        payload.pop("checksum")
        rebuilt = result_from_dict(payload)
        assert rebuilt.title == result.title

    def test_save_leaves_no_temp_files(self, result, tmp_path):
        save_result(result, tmp_path)
        litter = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert litter == []
