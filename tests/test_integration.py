"""End-to-end integration tests across subsystems.

These walk the full paper pipeline on small data: generate → filter/split
→ extract features → pre-sample quadruples → train TS-PPR and baselines
→ evaluate with the RRC protocol → combine with STREC.
"""

import numpy as np
import pytest

from repro.config import (
    EvaluationConfig,
    TSPPRConfig,
    WindowConfig,
)
from repro.data.split import temporal_split
from repro.evaluation.protocol import evaluate_recommender
from repro.models.pop import PopRecommender
from repro.models.random_rec import RandomRecommender
from repro.models.recency import RecencyRecommender
from repro.models.strec import STRECClassifier
from repro.models.tsppr import TSPPRRecommender
from repro.synth.gowalla import generate_gowalla


class TestFullPipeline:
    def test_generate_split_train_evaluate(self, gowalla_split, fitted_tsppr):
        result = evaluate_recommender(fitted_tsppr, gowalla_split)
        assert result.n_targets_total > 0
        assert 0.0 < result.maap[10] <= 1.0
        assert 0.0 < result.miap[10] <= 1.0

    def test_tsppr_beats_simple_baselines_at_top5(
        self, gowalla_split, fitted_tsppr
    ):
        """The headline claim, at test scale: TS-PPR ≥ Random/Recency."""
        ours = evaluate_recommender(fitted_tsppr, gowalla_split)
        for baseline in (
            RandomRecommender(random_state=1),
            RecencyRecommender(),
        ):
            theirs = evaluate_recommender(
                baseline.fit(gowalla_split), gowalla_split
            )
            assert ours.maap[5] > theirs.maap[5]

    def test_strec_plus_tsppr_combination(self, gowalla_split, fitted_tsppr):
        """Table 5's pipeline: filter targets by STREC's repeat switch."""
        strec = STRECClassifier().fit(gowalla_split)
        switch = strec.evaluate(gowalla_split)
        assert switch.accuracy > 0.5

        flagged = {}
        for user in range(gowalla_split.n_users):
            sequence = gowalla_split.full_sequence(user)
            flagged[user] = {
                t
                for t in range(gowalla_split.train_boundary(user), len(sequence))
                if strec.predict_position(sequence, t)
            }
        conditional = evaluate_recommender(
            fitted_tsppr,
            gowalla_split,
            target_filter=lambda user, t: t in flagged[user],
        )
        unconditional = evaluate_recommender(fitted_tsppr, gowalla_split)
        assert conditional.n_targets_total <= unconditional.n_targets_total

    def test_different_window_protocols(self, gowalla_dataset):
        """Ω and |W| can be varied end to end (Fig 10/11 machinery)."""
        split = temporal_split(gowalla_dataset)
        for omega in (5, 20):
            window = WindowConfig(min_gap=omega)
            config = TSPPRConfig(max_epochs=3000, seed=1)
            model = TSPPRRecommender(config).fit(split, window)
            result = evaluate_recommender(
                model, split, EvaluationConfig(window=window)
            )
            assert 0.0 <= result.maap[10] <= 1.0

    def test_reproducible_end_to_end(self):
        dataset = generate_gowalla(random_state=5, user_factor=0.08,
                                   length_factor=0.6)
        split = temporal_split(dataset)
        config = TSPPRConfig(max_epochs=3000, seed=9)
        a = evaluate_recommender(TSPPRRecommender(config).fit(split), split)
        b = evaluate_recommender(TSPPRRecommender(config).fit(split), split)
        assert a.maap == b.maap
        assert a.miap == b.miap

    def test_static_tables_only_from_training(self, gowalla_split):
        """Pop fitted on the split must match Pop fitted on an explicitly
        truncated dataset — i.e. the test suffix never leaks."""
        from repro.data.dataset import Dataset

        explicit_train = gowalla_split.train_dataset()
        direct = PopRecommender().fit(gowalla_split)
        frequencies = explicit_train.item_frequencies()
        assert np.allclose(
            direct._popularity, np.log1p(frequencies.astype(float))
        )
