"""Metrics exactness: histogram merging and cross-shard aggregation.

The cluster router sums its shards' ``/metrics`` snapshots with
:func:`~repro.serving.metrics.merge_snapshots` and claims the result is
*exact*. That claim rests on two properties these tests pin down, both
property-based (hypothesis):

* merging histograms is lossless — a merged histogram is bit-equal to
  one that observed every sample itself (integer-nanosecond state makes
  the adds associative and exact);
* snapshot merging is associative and order-independent — any
  permutation, any grouping, same payload.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving.metrics import (
    GaugeStats,
    LatencyHistogram,
    ServingMetrics,
    merge_snapshots,
)

#: Latency-like durations: microseconds to beyond the overflow bucket.
durations = st.floats(
    min_value=1e-6, max_value=90.0, allow_nan=False, allow_infinity=False
)

#: Depth-like integers the in-flight loop samples at kernel boundaries.
depths = st.integers(min_value=0, max_value=100_000)

#: One shard's worth of activity, rendered into a real snapshot.
shard_activity = st.fixed_dictionaries(
    {
        "requests": st.integers(min_value=0, max_value=50),
        "events": st.integers(min_value=0, max_value=50),
        "batches": st.integers(min_value=0, max_value=10),
        "batched_requests": st.integers(min_value=0, max_value=40),
        "latencies": st.lists(durations, max_size=20),
        "queue_depths": st.lists(depths, max_size=20),
        "occupancies": st.lists(depths, max_size=20),
        "cache_hits": st.integers(min_value=0, max_value=30),
        "cache_misses": st.integers(min_value=0, max_value=30),
    }
)


def snapshot_from(activity: dict) -> dict:
    """Drive a real ServingMetrics the way a shard would, then snapshot."""
    metrics = ServingMetrics()
    for name in ("requests", "events", "batches", "batched_requests"):
        metrics.inc(name, activity[name])
    for seconds in activity["latencies"]:
        metrics.observe("request_latency", seconds)
    for depth in activity["queue_depths"]:
        metrics.observe_gauge("queue_depth", depth)
    for rows in activity["occupancies"]:
        metrics.observe_gauge("batch_occupancy_rows", rows)
    return metrics.as_dict(
        {
            "hits": activity["cache_hits"],
            "misses": activity["cache_misses"],
            "evictions": 0,
            "rehydrations": 0,
            "hit_rate": 0.0,
        }
    )


class TestHistogramMerge:
    @given(xs=st.lists(durations, max_size=30), ys=st.lists(durations, max_size=30))
    @settings(deadline=None, max_examples=60)
    def test_merge_equals_observing_everything(self, xs, ys) -> None:
        """merge(H(xs), H(ys)) is bit-equal to H(xs + ys)."""
        left = LatencyHistogram()
        for x in xs:
            left.observe(x)
        right = LatencyHistogram()
        for y in ys:
            right.observe(y)
        combined = LatencyHistogram()
        for value in xs + ys:
            combined.observe(value)
        left.merge(right)
        assert left.state_dict() == combined.state_dict()
        assert left.summary() == combined.summary()

    def test_merge_rejects_different_bounds(self) -> None:
        with pytest.raises(ValueError, match="different bounds"):
            LatencyHistogram(bounds=[0.1, 1.0]).merge(
                LatencyHistogram(bounds=[0.2, 2.0])
            )

    @given(xs=st.lists(durations, min_size=1, max_size=30))
    @settings(deadline=None, max_examples=60)
    def test_state_round_trip(self, xs) -> None:
        histogram = LatencyHistogram()
        for x in xs:
            histogram.observe(x)
        clone = LatencyHistogram.from_state(histogram.state_dict())
        assert clone.state_dict() == histogram.state_dict()
        assert clone.percentile(0.99) == histogram.percentile(0.99)


class TestGaugeMerge:
    @given(xs=st.lists(depths, max_size=30), ys=st.lists(depths, max_size=30))
    @settings(deadline=None, max_examples=60)
    def test_merge_equals_observing_everything(self, xs, ys) -> None:
        """merge(G(xs), G(ys)) is bit-equal to G(xs + ys)."""
        left = GaugeStats()
        for x in xs:
            left.observe(x)
        right = GaugeStats()
        for y in ys:
            right.observe(y)
        combined = GaugeStats()
        for value in xs + ys:
            combined.observe(value)
        left.merge(right)
        assert left.state_dict() == combined.state_dict()
        assert left.summary() == combined.summary()

    @given(xs=st.lists(depths, min_size=1, max_size=30))
    @settings(deadline=None, max_examples=60)
    def test_state_round_trip(self, xs) -> None:
        gauge = GaugeStats()
        for x in xs:
            gauge.observe(x)
        clone = GaugeStats.from_state(gauge.state_dict())
        assert clone.state_dict() == gauge.state_dict()

    def test_rejects_negative_samples(self) -> None:
        with pytest.raises(ValueError, match="non-negative"):
            GaugeStats().observe(-1)


class TestSnapshotMerge:
    @given(
        activities=st.lists(shard_activity, min_size=1, max_size=5),
        seed=st.randoms(),
    )
    @settings(deadline=None, max_examples=40)
    def test_order_independent(self, activities, seed) -> None:
        """Any shard ordering produces the identical merged payload."""
        snapshots = [snapshot_from(a) for a in activities]
        reference = merge_snapshots(snapshots)
        shuffled = list(snapshots)
        seed.shuffle(shuffled)
        assert merge_snapshots(shuffled) == reference

    @given(activities=st.lists(shard_activity, min_size=3, max_size=5))
    @settings(deadline=None, max_examples=40)
    def test_associative(self, activities) -> None:
        """Grouping does not matter: a merged payload re-merges cleanly."""
        snapshots = [snapshot_from(a) for a in activities]
        flat = merge_snapshots(snapshots)
        left_grouped = merge_snapshots(
            [merge_snapshots(snapshots[:2]), *snapshots[2:]]
        )
        right_grouped = merge_snapshots(
            [snapshots[0], merge_snapshots(snapshots[1:])]
        )
        assert left_grouped == flat
        assert right_grouped == flat

    @given(activities=st.lists(shard_activity, min_size=1, max_size=5))
    @settings(deadline=None, max_examples=40)
    def test_totals_are_sums(self, activities) -> None:
        snapshots = [snapshot_from(a) for a in activities]
        merged = merge_snapshots(snapshots)
        assert merged["counters"]["requests"] == sum(
            a["requests"] for a in activities
        )
        assert merged["histogram_state"]["request_latency"]["n"] == sum(
            len(a["latencies"]) for a in activities
        )
        depth = merged["gauge_state"]["queue_depth"]
        assert depth["n"] == sum(len(a["queue_depths"]) for a in activities)
        assert depth["total"] == sum(
            sum(a["queue_depths"]) for a in activities
        )
        assert depth["max"] == max(
            (max(a["queue_depths"], default=0) for a in activities), default=0
        )
        cache = merged["session_cache"]
        hits = sum(a["cache_hits"] for a in activities)
        lookups = hits + sum(a["cache_misses"] for a in activities)
        assert cache["hits"] == hits
        assert cache["hit_rate"] == (hits / lookups if lookups else 0.0)

    def test_empty_iterable(self) -> None:
        merged = merge_snapshots([])
        assert merged["counters"] == {}
        assert merged["mean_batch_size"] == 0.0
