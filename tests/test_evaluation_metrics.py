"""Tests for repro.evaluation.metrics (Eq 22-24) and reports."""

import pytest

from repro.evaluation.metrics import (
    AccuracyResult,
    UserCounts,
    aggregate_accuracy,
    relative_improvement,
)
from repro.evaluation.reports import (
    format_series,
    format_table,
    render_markdown_table,
)
from repro.exceptions import EvaluationError


class TestUserCounts:
    def test_precision(self):
        counts = UserCounts(n_targets=4, hits={1: 1, 5: 3})
        assert counts.precision(1) == pytest.approx(0.25)
        assert counts.precision(5) == pytest.approx(0.75)

    def test_precision_undefined_for_empty_user(self):
        counts = UserCounts(n_targets=0, hits={1: 0})
        with pytest.raises(EvaluationError, match="undefined"):
            counts.precision(1)

    def test_hits_cannot_exceed_targets(self):
        with pytest.raises(EvaluationError):
            UserCounts(n_targets=2, hits={1: 3})

    def test_negative_rejected(self):
        with pytest.raises(EvaluationError):
            UserCounts(n_targets=-1, hits={})


class TestAggregateAccuracy:
    def test_paper_naming_maap_pools_miap_averages(self):
        """The paper's Eq 23/24: MaAP pools counts, MiAP averages P(u)."""
        per_user = [
            UserCounts(n_targets=8, hits={1: 4}),   # P(u) = 0.5
            UserCounts(n_targets=2, hits={1: 2}),   # P(u) = 1.0
        ]
        result = aggregate_accuracy(per_user, [1])
        assert result.maap[1] == pytest.approx(6 / 10)   # pooled
        assert result.miap[1] == pytest.approx(0.75)     # per-user mean

    def test_long_users_dominate_maap_not_miap(self):
        per_user = [
            UserCounts(n_targets=98, hits={1: 0}),
            UserCounts(n_targets=2, hits={1: 2}),
        ]
        result = aggregate_accuracy(per_user, [1])
        assert result.maap[1] == pytest.approx(0.02)
        assert result.miap[1] == pytest.approx(0.5)

    def test_users_without_targets_excluded(self):
        per_user = [
            UserCounts(n_targets=0, hits={1: 0}),
            UserCounts(n_targets=4, hits={1: 2}),
        ]
        result = aggregate_accuracy(per_user, [1])
        assert result.n_users_evaluated == 1
        assert result.miap[1] == pytest.approx(0.5)

    def test_all_users_empty_raises(self):
        with pytest.raises(EvaluationError, match="no user"):
            aggregate_accuracy([UserCounts(n_targets=0, hits={1: 0})], [1])

    def test_empty_top_ns_raises(self):
        with pytest.raises(EvaluationError):
            aggregate_accuracy([UserCounts(n_targets=1, hits={1: 1})], [])

    def test_multiple_cutoffs(self):
        per_user = [UserCounts(n_targets=4, hits={1: 1, 5: 2, 10: 4})]
        result = aggregate_accuracy(per_user, [1, 5, 10])
        assert result.maap[1] <= result.maap[5] <= result.maap[10]

    def test_as_rows(self):
        result = AccuracyResult(
            top_ns=(1,), maap={1: 0.5}, miap={1: 0.25},
            n_users_evaluated=2, n_targets_total=10,
        )
        row = result.as_rows("TS-PPR")
        assert row["Method"] == "TS-PPR"
        assert row["MaAP@1"] == 0.5
        assert row["MiAP@1"] == 0.25


class TestRelativeImprovement:
    def test_table3_example(self):
        # The paper's joint example: 0.6314 vs a 0.347 baseline ~ +82%.
        assert relative_improvement(1.82, 1.0) == pytest.approx(0.82)

    def test_negative_when_worse(self):
        assert relative_improvement(0.5, 1.0) == pytest.approx(-0.5)

    def test_zero_baseline_rejected(self):
        with pytest.raises(EvaluationError):
            relative_improvement(0.5, 0.0)


class TestReports:
    def test_format_table_aligns_columns(self):
        text = format_table([{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_format_table_union_of_keys(self):
        text = format_table([{"a": 1}, {"b": 2}])
        assert "a" in text and "b" in text

    def test_format_table_empty(self):
        assert format_table([]) == "(empty table)"

    def test_markdown_table(self):
        text = render_markdown_table([{"Method": "Pop", "MaAP@1": 0.5}])
        lines = text.splitlines()
        assert lines[0] == "| Method | MaAP@1 |"
        assert lines[1] == "| --- | --- |"
        assert lines[2] == "| Pop | 0.5000 |"

    def test_format_series(self):
        text = format_series("curve", [1, 2], [0.1, 0.2], "K", "MaAP")
        assert text.startswith("# curve")
        assert "K" in text and "MaAP" in text

    def test_format_series_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("bad", [1], [0.1, 0.2])
