"""Tests for repro.features.dynamic (recency Eq 19/20, familiarity Eq 21)."""

import math

import pytest

from repro.config import WindowConfig
from repro.data.sequence import ConsumptionSequence
from repro.exceptions import FeatureError
from repro.features.dynamic import (
    DynamicFamiliarityFeature,
    RecencyFeature,
    exponential_recency,
    hyperbolic_recency,
)
from repro.windows.window import window_before

WINDOW = WindowConfig(window_size=10, min_gap=2)


class TestDecayFunctions:
    def test_hyperbolic_values(self):
        assert hyperbolic_recency(1) == 1.0
        assert hyperbolic_recency(4) == 0.25

    def test_exponential_values(self):
        assert exponential_recency(1) == pytest.approx(math.exp(-1))
        assert exponential_recency(3) == pytest.approx(math.exp(-3))

    @pytest.mark.parametrize("fn", [hyperbolic_recency, exponential_recency])
    def test_rejects_nonpositive_gap(self, fn):
        with pytest.raises(FeatureError):
            fn(0)

    def test_both_decay_monotonically(self):
        for fn in (hyperbolic_recency, exponential_recency):
            values = [fn(g) for g in range(1, 20)]
            assert all(a > b for a, b in zip(values, values[1:]))

    def test_hyperbolic_decays_slower(self):
        # The paper prefers hyperbolic because interest decays slowly.
        assert hyperbolic_recency(10) > exponential_recency(10)


class TestRecencyFeature:
    @pytest.fixture()
    def sequence(self):
        return ConsumptionSequence(0, [4, 7, 4, 9])

    def test_hyperbolic_gap(self, sequence, tiny_dataset):
        feature = RecencyFeature("hyperbolic").fit(tiny_dataset, WINDOW)
        window = window_before(sequence, 3, 10)
        assert feature.value(sequence, 4, 3, window) == pytest.approx(1.0)
        assert feature.value(sequence, 7, 3, window) == pytest.approx(0.5)

    def test_exponential_kind(self, sequence, tiny_dataset):
        feature = RecencyFeature("exponential").fit(tiny_dataset, WINDOW)
        window = window_before(sequence, 3, 10)
        assert feature.value(sequence, 7, 3, window) == pytest.approx(math.exp(-2))

    def test_never_consumed_is_zero(self, sequence, tiny_dataset):
        feature = RecencyFeature().fit(tiny_dataset, WINDOW)
        window = window_before(sequence, 3, 10)
        assert feature.value(sequence, 99, 3, window) == 0.0

    def test_rejects_unknown_kind(self):
        with pytest.raises(FeatureError, match="kind"):
            RecencyFeature("linear")

    def test_uses_full_history_not_just_window(self, tiny_dataset):
        # Recency looks at l_ut(v) even when the item fell out of the
        # (shorter) window: the definition in Eq 19 has no window bound.
        sequence = ConsumptionSequence(0, [3, 0, 0, 0, 0])
        feature = RecencyFeature().fit(tiny_dataset, WINDOW)
        window = window_before(sequence, 4, 2)
        assert feature.value(sequence, 3, 4, window) == pytest.approx(0.25)


class TestDynamicFamiliarity:
    def test_matches_window_fraction(self, tiny_dataset):
        sequence = tiny_dataset.sequence(0)  # 0 1 0 2 0 1
        feature = DynamicFamiliarityFeature().fit(tiny_dataset, WINDOW)
        window = window_before(sequence, 5, 5)  # items t=0..4
        assert feature.value(sequence, 0, 5, window) == pytest.approx(3 / 5)
        assert feature.value(sequence, 2, 5, window) == pytest.approx(1 / 5)
        assert feature.value(sequence, 5, 5, window) == 0.0

    def test_window_size_changes_value(self, tiny_dataset):
        sequence = tiny_dataset.sequence(0)
        feature = DynamicFamiliarityFeature().fit(tiny_dataset, WINDOW)
        narrow = window_before(sequence, 5, 2)  # items t=3,4 -> [2, 0]
        assert feature.value(sequence, 0, 5, narrow) == pytest.approx(1 / 2)
