"""Tests for repro.evaluation.calibration."""

import numpy as np
import pytest

from repro.evaluation.calibration import (
    brier_score,
    collect_switch_probabilities,
    reliability_curve,
    resolution,
)
from repro.exceptions import EvaluationError, NotFittedError
from repro.models.strec import STRECClassifier


class TestBrierScore:
    def test_perfect_predictions(self):
        assert brier_score([1.0, 0.0], [1, 0]) == 0.0

    def test_worst_predictions(self):
        assert brier_score([0.0, 1.0], [1, 0]) == 1.0

    def test_constant_predictor_scores_base_variance(self):
        labels = np.array([1, 1, 1, 0])
        score = brier_score(np.full(4, 0.75), labels)
        assert score == pytest.approx(0.75 * 0.25)

    def test_validation(self):
        with pytest.raises(EvaluationError):
            brier_score([0.5], [1, 0])
        with pytest.raises(EvaluationError):
            brier_score([], [])
        with pytest.raises(EvaluationError):
            brier_score([1.5], [1])


class TestReliabilityCurve:
    def test_bins_cover_predictions(self, rng):
        probabilities = rng.random(500)
        labels = (rng.random(500) < probabilities).astype(float)
        bins = reliability_curve(probabilities, labels, n_bins=5)
        assert sum(b.count for b in bins) == 500
        for b in bins:
            assert b.lower <= b.mean_predicted <= b.upper + 1e-12

    def test_calibrated_predictor_lies_near_diagonal(self, rng):
        probabilities = rng.random(20_000)
        labels = (rng.random(20_000) < probabilities).astype(float)
        bins = reliability_curve(probabilities, labels, n_bins=5)
        for b in bins:
            assert b.empirical_rate == pytest.approx(b.mean_predicted, abs=0.05)

    def test_constant_predictor_occupies_one_bin(self):
        bins = reliability_curve(np.full(50, 0.42), np.ones(50), n_bins=10)
        assert len(bins) == 1
        assert bins[0].count == 50

    def test_edge_probability_one_included(self):
        bins = reliability_curve(np.array([1.0, 1.0]), np.array([1, 1]), 4)
        assert sum(b.count for b in bins) == 2

    def test_validation(self):
        with pytest.raises(EvaluationError):
            reliability_curve([0.5], [1], n_bins=0)
        with pytest.raises(EvaluationError):
            reliability_curve([], [], n_bins=3)


class TestResolution:
    def test_constant_predictor_has_zero_resolution(self):
        labels = np.array([1, 0, 1, 1, 0, 1])
        assert resolution(np.full(6, 0.66), labels) == pytest.approx(0.0)

    def test_discriminating_predictor_has_positive_resolution(self, rng):
        probabilities = np.concatenate([np.full(500, 0.1), np.full(500, 0.9)])
        labels = (rng.random(1000) < probabilities).astype(float)
        assert resolution(probabilities, labels) > 0.05


class TestCollectSwitchProbabilities:
    def test_requires_fitted_switch(self, gowalla_split):
        with pytest.raises(NotFittedError):
            collect_switch_probabilities(STRECClassifier(), gowalla_split)

    def test_probabilities_and_labels_align(self, gowalla_split):
        strec = STRECClassifier().fit(gowalla_split)
        probabilities, labels = collect_switch_probabilities(
            strec, gowalla_split, max_positions_per_user=40
        )
        assert probabilities.shape == labels.shape
        assert probabilities.size > 0
        assert np.all((0 <= probabilities) & (probabilities <= 1))
        assert set(np.unique(labels)) <= {0.0, 1.0}

    def test_brier_beats_coin_flip(self, gowalla_split):
        strec = STRECClassifier().fit(gowalla_split)
        probabilities, labels = collect_switch_probabilities(
            strec, gowalla_split, max_positions_per_user=40
        )
        # Even a base-rate switch beats p=0.5 on repeat-heavy data.
        assert brier_score(probabilities, labels) < brier_score(
            np.full_like(probabilities, 0.5), labels
        )
