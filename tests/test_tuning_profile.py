"""Machine profiles: knob registry, precedence, and the checksummed file.

Covers the startup contract of profile-guided autotuning:

* the registry rejects out-of-range / wrongly-typed knob values with a
  typed :class:`~repro.exceptions.TuningError` naming the offender;
* precedence is CLI > profile > built-in default **for every registered
  knob of every subsystem**, exercised knob-by-knob;
* ``profile.json`` write → load is lossless (a Hypothesis property over
  random valid knob selections), atomic, and checksummed — malformed
  files, stale schema versions, unknown knobs, out-of-range values, and
  hand-edited (checksum-torn) files all raise ``TuningError`` at load
  time rather than misconfiguring a server.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import TuningError
from repro.store import STORE_KINDS
from repro.tuning.defaults import (
    KNOBS,
    STORE_CHOICES,
    SUBSYSTEMS,
    defaults_for,
    describe,
    knob,
    knobs_for,
    resolve,
    values_of,
)
from repro.tuning.profile import PROFILE_VERSION, MachineProfile, load_profile_knobs

ALL_KNOBS = [
    (subsystem, name)
    for subsystem in SUBSYSTEMS
    for name in sorted(KNOBS[subsystem])
]


class TestRegistry:
    def test_every_subsystem_has_knobs(self) -> None:
        for subsystem in SUBSYSTEMS:
            assert knobs_for(subsystem)

    def test_store_choices_match_store_kinds(self) -> None:
        # defaults.py deliberately avoids importing repro.store (it must
        # stay import-light); this guard keeps the duplicate in sync.
        assert STORE_CHOICES == STORE_KINDS

    def test_cluster_is_serving_minus_microbatch_sizing(self) -> None:
        serving = set(knobs_for("serving"))
        cluster = set(knobs_for("cluster"))
        assert cluster == serving - {"max_batch", "max_wait_ms"}

    def test_defaults_validate(self) -> None:
        for subsystem, name in ALL_KNOBS:
            entry = knob(subsystem, name)
            assert entry.validate(entry.default) == entry.default

    def test_search_values_validate(self) -> None:
        for subsystem, name in ALL_KNOBS:
            entry = knob(subsystem, name)
            for value in entry.search:
                assert entry.validate(value) == value

    def test_alternative_is_valid_and_differs(self) -> None:
        for subsystem, name in ALL_KNOBS:
            entry = knob(subsystem, name)
            alternative = entry.alternative()
            assert alternative != entry.default
            assert entry.validate(alternative) == alternative

    def test_out_of_range_rejected(self) -> None:
        with pytest.raises(TuningError, match="check_interval"):
            knob("serving", "check_interval").validate(0)
        with pytest.raises(TuningError, match="max_wait_ms"):
            knob("serving", "max_wait_ms").validate(-1.0)
        with pytest.raises(TuningError, match="batching"):
            knob("serving", "batching").validate("warp")
        with pytest.raises(TuningError, match="expects int"):
            knob("serving", "max_batch").validate(2.5)
        with pytest.raises(TuningError, match="expects int"):
            knob("serving", "max_batch").validate(True)

    def test_unknown_names_rejected(self) -> None:
        with pytest.raises(TuningError, match="unknown subsystem"):
            knobs_for("networking")
        with pytest.raises(TuningError, match="unknown knob"):
            knob("serving", "turbo")


class TestPrecedence:
    @pytest.mark.parametrize(("subsystem", "name"), ALL_KNOBS)
    def test_cli_over_profile_over_default_per_knob(
        self, subsystem: str, name: str
    ) -> None:
        entry = knob(subsystem, name)
        profile_value = entry.alternative()
        # Default layer: nothing set.
        resolved = resolve(subsystem)
        assert resolved[name].value == entry.default
        assert resolved[name].source == "default"
        # Profile layer beats the default.
        resolved = resolve(subsystem, profile={name: profile_value})
        assert resolved[name].value == profile_value
        assert resolved[name].source == "profile"
        # CLI layer beats the profile.
        resolved = resolve(
            subsystem,
            cli={name: entry.default},
            profile={name: profile_value},
        )
        assert resolved[name].value == entry.default
        assert resolved[name].source == "cli"

    def test_none_cli_entry_falls_through(self) -> None:
        resolved = resolve(
            "serving", cli={"max_batch": None}, profile={"max_batch": 256}
        )
        assert resolved["max_batch"].value == 256
        assert resolved["max_batch"].source == "profile"

    def test_unknown_layer_knob_rejected(self) -> None:
        with pytest.raises(TuningError, match="cli"):
            resolve("serving", cli={"bogus": 1})
        with pytest.raises(TuningError, match="profile"):
            resolve("serving", profile={"bogus": 1})

    def test_bad_layer_value_rejected(self) -> None:
        with pytest.raises(TuningError, match="check_interval"):
            resolve("serving", profile={"check_interval": -5})

    def test_describe_names_every_knob_with_source(self) -> None:
        resolved = resolve("serving", cli={"max_batch": 16})
        line = describe(resolved)
        assert "max_batch=16(cli)" in line
        for name in knobs_for("serving"):
            assert f"{name}=" in line

    def test_values_of_flattens(self) -> None:
        values = values_of(resolve("training"))
        assert values == defaults_for("training")


def _knob_selections(subsystem: str):
    """Strategy: a random valid knob dict for one subsystem."""
    registry = knobs_for(subsystem)
    per_knob = {}
    for name, entry in registry.items():
        if entry.choices is not None:
            per_knob[name] = st.sampled_from(list(entry.choices))
        elif entry.kind is int:
            per_knob[name] = st.integers(
                min_value=int(entry.lo), max_value=min(int(entry.hi), 1 << 20)
            )
        else:
            per_knob[name] = st.floats(
                min_value=float(entry.lo),
                max_value=float(entry.hi),
                allow_nan=False,
                allow_infinity=False,
            )
    return st.fixed_dictionaries(per_knob)


class TestProfileFile:
    @settings(max_examples=25, deadline=None)
    @given(
        serving=_knob_selections("serving"),
        training=_knob_selections("training"),
    )
    def test_write_load_round_trip_lossless(
        self, tmp_path_factory, serving, training
    ) -> None:
        tmp_path = tmp_path_factory.mktemp("profile")
        profile = MachineProfile(
            machine={"cpu_count": 4}, created="2026-08-08T00:00:00Z"
        )
        profile.set_subsystem(
            "serving", serving, validation={"p99_ms": 1.25}
        )
        profile.set_subsystem("training", training)
        path = tmp_path / "profile.json"
        profile.save(path)
        loaded = MachineProfile.load(path)
        assert loaded.machine == profile.machine
        assert loaded.created == profile.created
        assert loaded.subsystems == profile.subsystems
        assert loaded.checksum() == profile.checksum()
        # Saving the loaded profile reproduces the bytes exactly.
        second = tmp_path / "again.json"
        loaded.save(second)
        assert second.read_bytes() == path.read_bytes()

    def test_missing_file_raises(self, tmp_path) -> None:
        with pytest.raises(TuningError, match="not found"):
            MachineProfile.load(tmp_path / "nope.json")

    def test_malformed_json_raises(self, tmp_path) -> None:
        path = tmp_path / "profile.json"
        path.write_text("{not json")
        with pytest.raises(TuningError, match="malformed"):
            MachineProfile.load(path)

    def test_non_object_raises(self, tmp_path) -> None:
        path = tmp_path / "profile.json"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(TuningError, match="expected a JSON object"):
            MachineProfile.load(path)

    def test_stale_version_raises(self, tmp_path) -> None:
        profile = MachineProfile()
        profile.set_subsystem("serving", defaults_for("serving"))
        path = tmp_path / "profile.json"
        profile.save(path)
        payload = json.loads(path.read_text())
        payload["profile_version"] = PROFILE_VERSION + 1
        path.write_text(json.dumps(payload))
        with pytest.raises(TuningError, match="stale"):
            MachineProfile.load(path)

    def test_unknown_subsystem_raises(self, tmp_path) -> None:
        path = tmp_path / "profile.json"
        payload = {
            "profile_version": PROFILE_VERSION,
            "created": "",
            "machine": {},
            "subsystems": {"networking": {"knobs": {}}},
        }
        path.write_text(json.dumps(payload))
        with pytest.raises(TuningError, match="unknown subsystem"):
            MachineProfile.load(path)

    def test_out_of_range_knob_raises(self, tmp_path) -> None:
        profile = MachineProfile()
        profile.set_subsystem("serving", defaults_for("serving"))
        path = tmp_path / "profile.json"
        profile.save(path)
        payload = json.loads(path.read_text())
        payload["subsystems"]["serving"]["knobs"]["check_interval"] = 0
        path.write_text(json.dumps(payload))
        with pytest.raises(TuningError, match="check_interval"):
            MachineProfile.load(path)

    def test_hand_edit_fails_checksum(self, tmp_path) -> None:
        profile = MachineProfile()
        profile.set_subsystem("serving", defaults_for("serving"))
        path = tmp_path / "profile.json"
        profile.save(path)
        payload = json.loads(path.read_text())
        payload["subsystems"]["serving"]["knobs"]["check_interval"] = 32
        path.write_text(json.dumps(payload))
        with pytest.raises(TuningError, match="checksum"):
            MachineProfile.load(path)

    def test_set_subsystem_validates(self) -> None:
        profile = MachineProfile()
        with pytest.raises(TuningError, match="unknown knob"):
            profile.set_subsystem("serving", {"bogus": 1})
        with pytest.raises(TuningError, match="max_batch"):
            profile.set_subsystem("serving", {"max_batch": 0})

    def test_missing_subsystem_block_message(self, tmp_path) -> None:
        profile = MachineProfile()
        profile.set_subsystem("serving", defaults_for("serving"))
        with pytest.raises(TuningError, match="tune cluster"):
            profile.knobs_for("cluster")
        assert profile.knobs_for("cluster", required=False) == {}

    def test_load_profile_knobs_helper(self, tmp_path) -> None:
        assert load_profile_knobs(None, "serving") == {}
        profile = MachineProfile()
        profile.set_subsystem("serving", defaults_for("serving"))
        path = tmp_path / "profile.json"
        profile.save(path)
        assert load_profile_knobs(path, "serving") == defaults_for("serving")
        assert (
            load_profile_knobs(profile, "serving") == defaults_for("serving")
        )
