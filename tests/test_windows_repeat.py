"""Tests for repro.windows.repeat — the RRC protocol's core semantics."""

import pytest

from repro.data.sequence import ConsumptionSequence
from repro.exceptions import DataError
from repro.windows.repeat import (
    candidate_items,
    is_repeat,
    is_valid_target,
    iter_evaluation_positions,
    iter_repeat_positions,
    recent_items,
)


@pytest.fixture()
def sequence() -> ConsumptionSequence:
    #          t: 0  1  2  3  4  5  6  7  8
    return ConsumptionSequence(0, [1, 2, 3, 1, 4, 2, 5, 1, 3])


class TestRecentItems:
    def test_basic(self, sequence):
        assert recent_items(sequence, 5, 2) == {1, 4}
        assert recent_items(sequence, 5, 5) == {1, 2, 3, 4}

    def test_zero_gap_is_empty(self, sequence):
        assert recent_items(sequence, 5, 0) == set()

    def test_at_start(self, sequence):
        assert recent_items(sequence, 0, 3) == set()

    def test_negative_gap_rejected(self, sequence):
        with pytest.raises(DataError):
            recent_items(sequence, 3, -1)


class TestIsRepeat:
    def test_repeat_inside_window(self, sequence):
        assert is_repeat(sequence, 3, window_size=5)   # item 1 at t=0
        assert is_repeat(sequence, 5, window_size=5)   # item 2 at t=1

    def test_not_repeat_outside_window(self, sequence):
        # Item 2 last at t=1; window of 2 before t=5 covers t=3,4 only.
        assert not is_repeat(sequence, 5, window_size=2)

    def test_first_occurrence_is_novel(self, sequence):
        assert not is_repeat(sequence, 4, window_size=5)  # item 4 is new

    def test_position_bounds(self, sequence):
        with pytest.raises(DataError):
            is_repeat(sequence, len(sequence), window_size=3)


class TestIsValidTarget:
    def test_repeat_beyond_gap_is_valid(self, sequence):
        # t=7 item 1, last at t=3, gap 4 > Ω=2 and within window 6.
        assert is_valid_target(sequence, 7, window_size=6, min_gap=2)

    def test_repeat_within_gap_is_invalid(self, sequence):
        # t=3 item 1, last at t=0, gap 3 <= Ω=3.
        assert not is_valid_target(sequence, 3, window_size=6, min_gap=3)

    def test_novel_is_invalid(self, sequence):
        assert not is_valid_target(sequence, 6, window_size=6, min_gap=1)


class TestCandidateItems:
    def test_excludes_recent_and_sorts(self, sequence):
        # Before t=7: window(5) = {4,2,5} at t 2..6 -> items 3,1,4,2,5.
        # Recent(2) = {2, 5}.
        assert candidate_items(sequence, 7, window_size=5, min_gap=2) == [1, 3, 4]

    def test_empty_when_gap_covers_window(self, sequence):
        assert candidate_items(sequence, 4, window_size=3, min_gap=3) == []


class TestIterRepeatPositions:
    def test_yields_expected_positions(self, sequence):
        positions = [
            t for t, _ in iter_repeat_positions(sequence, window_size=8, min_gap=2)
        ]
        # t=3 (item1 gap 3), t=5 (item2 gap 4), t=7 (item1 gap 4),
        # t=8 (item3 gap 6). All > Ω=2 and within window 8.
        assert positions == [3, 5, 7, 8]

    def test_min_gap_filters(self, sequence):
        positions = [
            t for t, _ in iter_repeat_positions(sequence, window_size=8, min_gap=4)
        ]
        assert positions == [8]

    def test_window_filters(self, sequence):
        positions = [
            t for t, _ in iter_repeat_positions(sequence, window_size=4, min_gap=2)
        ]
        # t=8's item 3 has gap 6 > window 4 -> dropped.
        assert positions == [3, 5, 7]

    def test_stop_parameter(self, sequence):
        positions = [
            t
            for t, _ in iter_repeat_positions(
                sequence, window_size=8, min_gap=2, stop=6
            )
        ]
        assert positions == [3, 5]

    def test_bad_range_rejected(self, sequence):
        with pytest.raises(DataError):
            list(iter_repeat_positions(sequence, 8, 2, start=5, stop=3))

    def test_window_view_matches_position(self, sequence):
        for t, view in iter_repeat_positions(sequence, window_size=4, min_gap=1):
            assert view.end == t
            assert view.start == max(0, t - 4)

    def test_matches_naive_definition(self, gowalla_dataset):
        sequence = gowalla_dataset.sequence(0)
        fast = {
            t for t, _ in iter_repeat_positions(sequence, 20, 3)
        }
        naive = set()
        items = sequence.items.tolist()
        for t in range(1, len(items)):
            window = items[max(0, t - 20):t]
            recent = set(items[max(0, t - 3):t])
            if items[t] in window and items[t] not in recent:
                naive.add(t)
        assert fast == naive


class TestIterEvaluationPositions:
    def test_candidates_contain_truth(self, sequence):
        rows = list(iter_evaluation_positions(sequence, 3, window_size=8, min_gap=2))
        for t, candidates in rows:
            assert int(sequence[t]) in candidates
            assert candidates == sorted(candidates)

    def test_starts_at_boundary(self, sequence):
        rows = list(iter_evaluation_positions(sequence, 6, window_size=8, min_gap=2))
        assert all(t >= 6 for t, _ in rows)
