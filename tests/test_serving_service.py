"""RecommendService contracts: online/offline bit-identity and degradation.

The acceptance bar for the serving layer: replaying a held-out event
stream through :class:`RecommendService` must yield recommendation lists
**array-identical** to the offline evaluation protocol (same model, same
queries) — for TS-PPR, PPR, FPMC, and Recency — regardless of
micro-batch shape. Deadlines degrade to the Recency baseline instead of
failing, and the fallback itself is deterministic and well-defined.
"""

from __future__ import annotations

import threading
import time
from typing import List

import numpy as np
import pytest

from conftest import SMALL_WINDOW

from repro.config import TSPPRConfig, WindowConfig
from repro.data.split import SplitDataset
from repro.engine.query import Query
from repro.evaluation.protocol import collect_queries
from repro.exceptions import ServingError
from repro.models.base import Recommender
from repro.models.fpmc import FPMCRecommender
from repro.models.ppr import PPRRecommender
from repro.models.recency import RecencyRecommender
from repro.models.tsppr import TSPPRRecommender
from repro.serving.service import (
    RecommendService,
    ServiceConfig,
    service_for_split,
)
from repro.serving.state import SessionStore

#: Training budget small enough for per-test fits of the learned models.
QUICK = TSPPRConfig(max_epochs=3000, seed=3)

K = 10


def small_config(**overrides) -> ServiceConfig:
    defaults = dict(window=SMALL_WINDOW, default_k=K)
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def offline_recommendations(
    model: Recommender, split: SplitDataset, user: int
) -> List[List[int]]:
    """The offline protocol's top-K lists for one user's test suffix."""
    queries = collect_queries(
        split.full_sequence(user),
        split.train_boundary(user),
        SMALL_WINDOW.window_size,
        SMALL_WINDOW.min_gap,
        user=user,
    )
    if not queries:
        return []
    return model.recommend_batch(split.full_sequence(user), queries, K)


def replay_online(
    model: Recommender, split: SplitDataset, users, **config_overrides
) -> dict:
    """Replay each user's test suffix through a live service."""
    config = small_config(
        n_items=split.n_items, **config_overrides
    )
    online = {user: [] for user in users}
    with service_for_split(model, split, config=config) as service:
        for user in users:
            items = split.full_sequence(user).items[
                split.train_boundary(user):
            ].tolist()
            for item in items:
                result = service.step(user, item, k=K)
                if result is not None:
                    online[user].append(result.items)
    return online


def assert_online_matches_offline(
    model: Recommender, split: SplitDataset, n_users: int = 4
) -> int:
    users = list(range(min(n_users, split.n_users)))
    online = replay_online(model, split, users)
    compared = 0
    for user in users:
        offline = offline_recommendations(model, split, user)
        assert len(online[user]) == len(offline), (
            f"user {user}: online answered {len(online[user])} queries, "
            f"offline protocol has {len(offline)}"
        )
        for t_index, (live, ref) in enumerate(zip(online[user], offline)):
            assert live == ref, (
                f"{type(model).__name__} diverges for user {user} at "
                f"query {t_index}: online {live} vs offline {ref}"
            )
            compared += 1
    assert compared > 0, "fixture produced no evaluation queries"
    return compared


class TestOnlineOfflineEquivalence:
    def test_recency(self, gowalla_split: SplitDataset) -> None:
        model = RecencyRecommender().fit(gowalla_split, SMALL_WINDOW)
        assert_online_matches_offline(model, gowalla_split)

    def test_tsppr(self, gowalla_split: SplitDataset) -> None:
        model = TSPPRRecommender(QUICK).fit(gowalla_split, SMALL_WINDOW)
        assert_online_matches_offline(model, gowalla_split)

    def test_ppr(self, gowalla_split: SplitDataset) -> None:
        model = PPRRecommender(QUICK).fit(gowalla_split, SMALL_WINDOW)
        assert_online_matches_offline(model, gowalla_split)

    def test_fpmc(self, gowalla_split: SplitDataset) -> None:
        model = FPMCRecommender(QUICK).fit(gowalla_split, SMALL_WINDOW)
        assert_online_matches_offline(model, gowalla_split)

    def test_batch_shape_does_not_matter(
        self, gowalla_split: SplitDataset
    ) -> None:
        """max_batch=1 (naive) and max_batch=64 answer identically."""
        model = RecencyRecommender().fit(gowalla_split, SMALL_WINDOW)
        users = [0, 1, 2]
        naive = replay_online(
            model, gowalla_split, users, max_batch=1, max_wait_ms=0.0
        )
        batched = replay_online(
            model, gowalla_split, users, max_batch=64, max_wait_ms=2.0
        )
        assert naive == batched

    def test_concurrent_submissions_are_isolated(
        self, gowalla_split: SplitDataset
    ) -> None:
        """Many threads hammering recommend() get per-submit-time answers."""
        model = RecencyRecommender().fit(gowalla_split, SMALL_WINDOW)
        config = small_config(n_items=gowalla_split.n_items)
        users = [0, 1, 2, 3]
        with service_for_split(model, gowalla_split, config=config) as service:
            errors: List[BaseException] = []

            answers = {user: [] for user in users}

            def hammer(user: int) -> None:
                try:
                    sequence = gowalla_split.full_sequence(user)
                    boundary = gowalla_split.train_boundary(user)
                    for item in sequence.items[boundary:boundary + 20].tolist():
                        result = service.recommend(user, k=K)
                        answers[user].append((result.t, result.items))
                        service.ingest(user, item)
                except BaseException as exc:  # noqa: BLE001 - checked below
                    errors.append(exc)

            threads = [
                threading.Thread(target=hammer, args=(user,)) for user in users
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors, errors
            snapshot = service.metrics_snapshot()
            assert snapshot["counters"]["errors"] == 0
            assert snapshot["counters"]["events"] == 20 * len(users)
            # Every answer must match a serial single-user replay: each
            # request saw exactly the history before its captured t.
            for user in users:
                sequence = gowalla_split.full_sequence(user)
                boundary = gowalla_split.train_boundary(user)
                full = sequence.items[:boundary + 20].tolist()
                for t, items in answers[user]:
                    from repro.engine.session import ScoringSession

                    session = ScoringSession(
                        type(sequence)(user, full[:t]),
                        SMALL_WINDOW.window_size,
                        min_gap=SMALL_WINDOW.min_gap,
                        start=t,
                    )
                    candidates = session.candidates()
                    if not candidates:
                        assert items == []
                        continue
                    expected = model.recommend_batch(
                        type(sequence)(user, full[:t]),
                        [Query(t=t, candidates=tuple(candidates))],
                        K,
                    )[0]
                    assert items == expected, (
                        f"user {user} t={t}: concurrent answer diverges"
                    )


class TestColdIngest:
    def test_first_contact_ingest_applies_once(
        self, tmp_path, tiny_split: SplitDataset
    ) -> None:
        """Regression: logging before the session exists must not double-apply."""
        from repro.serving.events import EventLog

        log = EventLog.open(tmp_path / "events.log")
        store = SessionStore(
            SMALL_WINDOW.window_size,
            SMALL_WINDOW.min_gap,
            event_source=log.events_for,
        )
        fitted = RecencyRecommender().fit(tiny_split, SMALL_WINDOW)
        with RecommendService(
            fitted, store, event_log=log, config=small_config(n_items=6)
        ) as service:
            # User 5 has no base history and no resident session: the
            # very first touch is an ingest.
            service.ingest(5, 3)
            service.ingest(5, 4)
            session = store.get(5)
            assert session.t == 2
            assert session.window_counts_map() == {3: 1, 4: 1}
            # And rehydration replays the same two events, once.
            fingerprint = session.state_fingerprint()
            store.evict(5)
            assert store.state_fingerprint(5) == fingerprint


class SlowScorer(RecencyRecommender):
    """Recency with a configurable scoring delay and an inverted ranking.

    The inversion guarantees the fallback (true Recency order) is
    *distinguishable* from the slow model's answer, so the deadline
    tests can tell which path produced a result.
    """

    def __init__(self, delay_s: float = 0.05) -> None:
        super().__init__()
        self.delay_s = delay_s

    def score_batch(self, sequence, queries):
        time.sleep(self.delay_s)
        return [-scores for scores in super().score_batch(sequence, queries)]


class TestDeadlines:
    def fit_slow(self, split: SplitDataset, delay_s: float) -> SlowScorer:
        model = SlowScorer(delay_s)
        model.fit(split, SMALL_WINDOW)
        return model

    def recency_reference(
        self, service: RecommendService, user: int
    ) -> List[int]:
        """What the Recency fallback must return for the user right now."""
        session = service.store.get(user)
        candidates = session.candidates()
        lasts = session.last_positions(candidates)
        scores = RecencyRecommender.scores_from_last_positions(
            lasts, session.t
        )
        order = np.argsort(-scores, kind="stable")[:K]
        return [int(candidates[int(i)]) for i in order]

    def test_deadline_zero_always_falls_back(
        self, gowalla_split: SplitDataset
    ) -> None:
        """deadline_ms=0 expires at dequeue: deterministic fallback path."""
        model = self.fit_slow(gowalla_split, delay_s=0.0)
        config = small_config(n_items=gowalla_split.n_items)
        with service_for_split(model, gowalla_split, config=config) as service:
            expected = self.recency_reference(service, 0)
            result = service.recommend(0, k=K, deadline_ms=0.0)
            assert result.degraded
            assert result.items == expected
            snapshot = service.metrics_snapshot()
            assert snapshot["counters"]["deadline_fallbacks"] == 1

    def test_slow_model_misses_deadline(
        self, gowalla_split: SplitDataset
    ) -> None:
        """The model overruns mid-scoring: post-scoring fallback."""
        model = self.fit_slow(gowalla_split, delay_s=0.2)
        config = small_config(n_items=gowalla_split.n_items, max_wait_ms=0.0)
        with service_for_split(model, gowalla_split, config=config) as service:
            expected = self.recency_reference(service, 0)
            result = service.recommend(0, k=K, deadline_ms=50.0)
            assert result.degraded
            assert result.items == expected

    def test_generous_deadline_uses_model(
        self, gowalla_split: SplitDataset
    ) -> None:
        model = self.fit_slow(gowalla_split, delay_s=0.0)
        config = small_config(n_items=gowalla_split.n_items)
        with service_for_split(model, gowalla_split, config=config) as service:
            # Build a state with several Ω-eligible candidates (1, 2, 3
            # fall outside the last-Ω=2 steps) so order inversion shows.
            user = gowalla_split.n_users + 1
            for item in (1, 2, 3, 4, 5):
                service.ingest(user, item)
            recency_order = self.recency_reference(service, user)
            assert len(recency_order) >= 2
            result = service.recommend(user, k=K, deadline_ms=60_000.0)
            assert not result.degraded
            # The inverted scorer must NOT match the Recency order.
            assert result.items != recency_order
            assert sorted(result.items) == sorted(recency_order)

    def test_default_deadline_from_config(
        self, gowalla_split: SplitDataset
    ) -> None:
        model = self.fit_slow(gowalla_split, delay_s=0.0)
        config = small_config(
            n_items=gowalla_split.n_items, default_deadline_ms=0.0
        )
        with service_for_split(model, gowalla_split, config=config) as service:
            assert service.recommend(0, k=K).degraded


class TestServiceEdges:
    def fitted(self, split: SplitDataset) -> RecencyRecommender:
        return RecencyRecommender().fit(split, SMALL_WINDOW)

    def test_empty_candidates_resolve_empty(
        self, gowalla_split: SplitDataset
    ) -> None:
        model = self.fitted(gowalla_split)
        config = small_config(n_items=gowalla_split.n_items)
        with service_for_split(model, gowalla_split, config=config) as service:
            # A brand-new user past the dataset has no history at all.
            result = service.recommend(gowalla_split.n_users + 5, k=K)
            assert result.items == []
            assert not result.degraded
            snapshot = service.metrics_snapshot()
            assert snapshot["counters"]["empty_candidate_requests"] == 1

    def test_rejects_unfitted_model(self, gowalla_split: SplitDataset) -> None:
        store = SessionStore(SMALL_WINDOW.window_size, SMALL_WINDOW.min_gap)
        with pytest.raises(ServingError, match="fitted"):
            RecommendService(
                RecencyRecommender(), store, config=small_config()
            )

    def test_rejects_window_mismatch(self, gowalla_split: SplitDataset) -> None:
        model = self.fitted(gowalla_split)
        store = SessionStore(window_size=50, min_gap=5)
        with pytest.raises(ServingError, match="window"):
            RecommendService(model, store, config=small_config())

    def test_rejects_bad_requests(self, gowalla_split: SplitDataset) -> None:
        model = self.fitted(gowalla_split)
        config = small_config(n_items=gowalla_split.n_items)
        with service_for_split(model, gowalla_split, config=config) as service:
            with pytest.raises(ServingError, match="k must be positive"):
                service.recommend(0, k=0)
            with pytest.raises(ServingError, match="user"):
                service.ingest(-1, 0)
            with pytest.raises(ServingError, match="vocabulary"):
                service.ingest(0, gowalla_split.n_items + 10)
            with pytest.raises(ServingError, match="vocabulary"):
                service.ingest(0, -2)
        with pytest.raises(ServingError, match="closed"):
            service.recommend(0)

    def test_config_validation(self) -> None:
        with pytest.raises(ServingError, match="default_k"):
            ServiceConfig(default_k=0)
        with pytest.raises(ServingError, match="max_batch"):
            ServiceConfig(max_batch=0)
        with pytest.raises(ServingError, match="max_wait_ms"):
            ServiceConfig(max_wait_ms=-1.0)
        with pytest.raises(ServingError, match="default_deadline_ms"):
            ServiceConfig(default_deadline_ms=-5.0)

    def test_scoring_failure_fails_request_not_service(
        self, gowalla_split: SplitDataset
    ) -> None:
        class Exploding(RecencyRecommender):
            def score_batch(self, sequence, queries):
                raise RuntimeError("boom")

        model = Exploding().fit(gowalla_split, SMALL_WINDOW)
        config = small_config(n_items=gowalla_split.n_items)
        with service_for_split(model, gowalla_split, config=config) as service:
            with pytest.raises(ServingError, match="boom"):
                service.recommend(0, k=K)
            snapshot = service.metrics_snapshot()
            assert snapshot["counters"]["errors"] == 1
            # The worker survives: an empty-candidate request still works.
            result = service.recommend(gowalla_split.n_users + 5, k=K)
            assert result.items == []

    def test_metrics_snapshot_shape(self, gowalla_split: SplitDataset) -> None:
        model = self.fitted(gowalla_split)
        config = small_config(n_items=gowalla_split.n_items)
        with service_for_split(model, gowalla_split, config=config) as service:
            suffix = gowalla_split.full_sequence(0).items[
                gowalla_split.train_boundary(0):
            ].tolist()
            for item in suffix:
                service.step(0, item, k=K)
            snapshot = service.metrics_snapshot()
        counters = snapshot["counters"]
        assert counters["events"] == len(suffix)
        assert counters["requests"] == counters["recommendations"]
        assert counters["requests"] > 0
        assert snapshot["latency"]["request_latency"]["count"] == (
            counters["recommendations"]
        )
        assert snapshot["session_cache"]["misses"] == 1
        assert 0 < snapshot["mean_batch_size"] <= 64
