"""Tests for repro.features.static (item quality Eq 16-17, IR Eq 18)."""

import numpy as np
import pytest

from repro.config import WindowConfig
from repro.data.dataset import Dataset
from repro.exceptions import FeatureError, NotFittedError
from repro.features.static import (
    ItemQualityFeature,
    ReconsumptionRatioFeature,
    compute_item_quality,
    compute_reconsumption_ratio,
)
from repro.windows.window import window_before

WINDOW = WindowConfig(window_size=10, min_gap=2)


class TestComputeItemQuality:
    def test_minmax_normalization(self):
        quality = compute_item_quality(np.array([0, 1, 9]))
        assert quality[0] == 0.0
        assert quality[2] == 1.0
        expected = np.log(2) / np.log(10)
        assert quality[1] == pytest.approx(expected)

    def test_constant_frequencies_give_zeros(self):
        assert compute_item_quality(np.array([4, 4, 4])).tolist() == [0, 0, 0]

    def test_monotone_in_frequency(self):
        quality = compute_item_quality(np.array([1, 5, 25, 125]))
        assert np.all(np.diff(quality) > 0)

    def test_range(self, gowalla_dataset):
        quality = compute_item_quality(gowalla_dataset.item_frequencies())
        assert quality.min() >= 0.0
        assert quality.max() <= 1.0


class TestComputeReconsumptionRatio:
    def test_hand_computed(self, tiny_dataset):
        ratio = compute_reconsumption_ratio(tiny_dataset, window_size=100)
        # Item 0: 4 observations, repeats at user0 t=2, t=4 -> 2/4.
        assert ratio[0] == pytest.approx(0.5)
        # Item 5: 7 observations, 5 repeats (user 2 t=1..5) -> 5/7.
        assert ratio[5] == pytest.approx(5 / 7)
        # Item 2: 2 observations (user0 t=3, user3 t=2), no repeat.
        assert ratio[2] == 0.0

    def test_window_size_limits_repeats(self):
        dataset = Dataset.from_user_items([[0, 1, 2, 3, 0]], n_items=4)
        assert compute_reconsumption_ratio(dataset, 10)[0] == pytest.approx(0.5)
        assert compute_reconsumption_ratio(dataset, 2)[0] == 0.0

    def test_unconsumed_items_are_zero(self, tiny_dataset):
        dataset = Dataset.from_user_items([[0]], n_items=5)
        ratio = compute_reconsumption_ratio(dataset, 10)
        assert ratio[4] == 0.0

    def test_range(self, gowalla_dataset):
        ratio = compute_reconsumption_ratio(gowalla_dataset, 100)
        assert ratio.min() >= 0.0
        assert ratio.max() <= 1.0


class TestFeatureExtractors:
    def test_quality_value_lookup(self, tiny_dataset):
        feature = ItemQualityFeature().fit(tiny_dataset, WINDOW)
        sequence = tiny_dataset.sequence(0)
        window = window_before(sequence, 3, WINDOW.window_size)
        expected = compute_item_quality(tiny_dataset.item_frequencies())
        assert feature.value(sequence, 5, 3, window) == pytest.approx(expected[5])

    def test_quality_requires_fit(self, tiny_dataset):
        feature = ItemQualityFeature()
        sequence = tiny_dataset.sequence(0)
        window = window_before(sequence, 3, 10)
        with pytest.raises(NotFittedError):
            feature.value(sequence, 0, 3, window)

    def test_quality_rejects_out_of_vocab(self, tiny_dataset):
        feature = ItemQualityFeature().fit(tiny_dataset, WINDOW)
        sequence = tiny_dataset.sequence(0)
        window = window_before(sequence, 3, 10)
        with pytest.raises(FeatureError, match="outside"):
            feature.value(sequence, 999, 3, window)

    def test_ratio_table_matches_function(self, tiny_dataset):
        feature = ReconsumptionRatioFeature().fit(tiny_dataset, WINDOW)
        expected = compute_reconsumption_ratio(tiny_dataset, WINDOW.window_size)
        assert np.allclose(feature.table, expected)

    def test_ratio_requires_fit(self):
        with pytest.raises(NotFittedError):
            ReconsumptionRatioFeature().table
