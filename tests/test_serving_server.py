"""HTTP transport round-trips: server routes, client, error mapping.

Every test binds to an ephemeral port (``port=0``) so the suite can run
in parallel and on busy machines. The server under test fronts a real
:class:`RecommendService` over the Recency model, so these are true
end-to-end round-trips: socket → handler → micro-batch queue → model →
JSON reply.
"""

from __future__ import annotations

import json
import time
import urllib.request

import pytest

from conftest import SMALL_WINDOW

from repro.config import WindowConfig
from repro.data.split import SplitDataset
from repro.exceptions import ServingError, ServingUnavailableError
from repro.models.recency import RecencyRecommender
from repro.serving import (
    EventLog,
    RecommendServer,
    ServiceConfig,
    ServingClient,
    service_for_split,
)


@pytest.fixture()
def served(gowalla_split: SplitDataset):
    """A running ephemeral-port server + client over Recency."""
    model = RecencyRecommender().fit(gowalla_split, SMALL_WINDOW)
    config = ServiceConfig(window=SMALL_WINDOW, n_items=gowalla_split.n_items)
    service = service_for_split(model, gowalla_split, config=config)
    server = RecommendServer(service, port=0).start()
    try:
        yield server, ServingClient(server.url), gowalla_split
    finally:
        server.close()


@pytest.fixture()
def served_with_log(gowalla_split: SplitDataset, tmp_path):
    """Like ``served`` but write-ahead logged (idempotency needs the WAL)."""
    model = RecencyRecommender().fit(gowalla_split, SMALL_WINDOW)
    config = ServiceConfig(window=SMALL_WINDOW, n_items=gowalla_split.n_items)
    log = EventLog.open(tmp_path / "events.log")
    service = service_for_split(
        model, gowalla_split, event_log=log, config=config
    )
    server = RecommendServer(service, port=0).start()
    try:
        yield server, ServingClient(server.url), gowalla_split
    finally:
        server.close()


class TestRoutes:
    def test_healthz(self, served) -> None:
        _, client, _ = served
        assert client.health()

    def test_event_then_recommend_round_trip(self, served) -> None:
        server, client, split = served
        user = 0
        boundary = split.train_boundary(user)
        item = int(split.full_sequence(user).items[boundary])
        assert client.ingest(user, item) == boundary
        reply = client.recommend(user, k=5)
        assert reply["user"] == user
        assert reply["t"] == boundary + 1
        assert isinstance(reply["items"], list)
        assert len(reply["items"]) <= 5
        assert reply["degraded"] is False
        assert reply["request_id"].startswith("r")
        assert reply["latency_ms"] >= 0
        # recommend_items strips the envelope; state is unchanged, so a
        # repeated request returns the same ranking.
        assert client.recommend_items(user, k=5) == [
            int(i) for i in reply["items"]
        ]
        # And the answer matches calling the service directly.
        direct = server.service.recommend(user, k=5)
        assert direct.items == [int(i) for i in reply["items"]]

    def test_metrics_endpoint(self, served) -> None:
        _, client, split = served
        client.ingest(0, int(split.full_sequence(0).items[0]))
        client.recommend(0, k=3)
        snapshot = client.metrics()
        assert snapshot["counters"]["events"] >= 1
        assert snapshot["counters"]["requests"] >= 1
        assert "request_latency" in snapshot["latency"]
        assert "session_cache" in snapshot

    def test_unknown_routes_404(self, served) -> None:
        server, client, _ = served
        with pytest.raises(ServingError, match="HTTP 404"):
            client._request("/nope")
        with pytest.raises(ServingError, match="HTTP 404"):
            client._request("/nope", {"user": 0})


class TestErrorMapping:
    def test_missing_field_is_400(self, served) -> None:
        _, client, _ = served
        with pytest.raises(ServingError, match="missing required field"):
            client._request("/events", {"user": 0})

    def test_non_integer_field_is_400(self, served) -> None:
        _, client, _ = served
        with pytest.raises(ServingError, match="must be an integer"):
            client._request("/events", {"user": 0, "item": "many"})

    def test_vocabulary_violation_is_400(self, served) -> None:
        _, client, split = served
        with pytest.raises(ServingError, match="vocabulary"):
            client.ingest(0, split.n_items + 50)

    def test_non_object_body_is_400(self, served) -> None:
        server, _, _ = served
        request = urllib.request.Request(
            f"{server.url}/events",
            data=json.dumps([1, 2]).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(request, timeout=10)
        assert exc_info.value.code == 400

    def test_malformed_json_is_400(self, served) -> None:
        server, _, _ = served
        request = urllib.request.Request(
            f"{server.url}/events",
            data=b"{oops",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(request, timeout=10)
        assert exc_info.value.code == 400

    def test_unreachable_server(self) -> None:
        client = ServingClient("http://127.0.0.1:9", timeout=0.5)
        with pytest.raises(ServingError, match="cannot reach"):
            client.ingest(0, 0)
        assert client.health() is False


class TestIdempotency:
    def test_retried_event_is_deduplicated(self, served_with_log) -> None:
        """A retransmitted append returns the original position, once."""
        server, client, split = served_with_log
        user = 0
        item = int(split.full_sequence(user).items[split.train_boundary(user)])
        first = client.ingest(user, item, seq=0)
        duplicate = client.ingest(user, item, seq=0)  # the retry
        assert duplicate == first
        state = client.state(user)
        assert state["live_events"] == 1  # applied exactly once
        assert client.metrics()["counters"]["duplicate_events"] == 1

    def test_fresh_client_resumes_seq_from_state(
        self, served_with_log
    ) -> None:
        """A reconnecting client initializes its counter from ``/state``."""
        server, client, split = served_with_log
        user, items = 1, [3, 5, 3]
        for item in items:
            client.ingest(user, item)
        fresh = ServingClient(server.url)  # no memory of the first client
        position = fresh.ingest(user, 7)
        assert position == split.train_boundary(user) + len(items)
        assert client.state(user)["live_events"] == len(items) + 1

    def test_seq_gap_is_rejected(self, served_with_log) -> None:
        _, client, _ = served_with_log
        with pytest.raises(ServingError, match="skips ahead"):
            client.ingest(2, 1, seq=5)

    def test_duplicate_with_different_item_is_rejected(
        self, served_with_log
    ) -> None:
        """A dedup hit must carry the committed item, else the client lies."""
        _, client, _ = served_with_log
        client.ingest(3, 11, seq=0)
        with pytest.raises(ServingError, match="committed there"):
            client.ingest(3, 12, seq=0)

    def test_state_route_matches_service(self, served_with_log) -> None:
        server, client, split = served_with_log
        user = 4
        client.ingest(user, 2)
        state = client.state(user)
        direct = server.service.user_state(user)
        assert state == direct
        assert state["user"] == user
        assert state["live_events"] == 1
        assert state["t"] == split.train_boundary(user) + 1
        assert isinstance(state["fingerprint"], str)


class TestAvailabilityAndTimeouts:
    def test_unreachable_is_typed_unavailable(self) -> None:
        client = ServingClient("http://127.0.0.1:9", timeout=0.5, retries=0)
        with pytest.raises(ServingUnavailableError):
            client.recommend(0)
        # Still catchable as the serving-layer base error.
        assert issubclass(ServingUnavailableError, ServingError)

    def test_http_errors_stay_plain_serving_errors(self, served) -> None:
        """A server that *answered* is not 'unavailable' — no blind retry."""
        _, client, _ = served
        with pytest.raises(ServingError) as exc_info:
            client._request("/nope")
        assert not isinstance(exc_info.value, ServingUnavailableError)

    def test_per_request_timeout_honored(self, served) -> None:
        """A hung server trips the caller's timeout, not the default."""
        server, client, _ = served
        client.hang(1.2)
        tight = ServingClient(server.url, timeout=30.0, retries=0)
        start = time.monotonic()
        with pytest.raises(ServingUnavailableError):
            tight.recommend(0, timeout=0.3)
        elapsed = time.monotonic() - start
        assert elapsed < 1.0, f"timeout ignored: waited {elapsed:.2f}s"
        # Once the hang window closes the server answers again.
        time.sleep(1.2)
        assert tight.health()

    def test_retries_eventually_reach_recovering_server(self, served) -> None:
        """Bounded backoff rides out an outage shorter than the budget."""
        server, _, _ = served
        hangy = ServingClient(
            server.url, timeout=0.2, retries=8, backoff_s=0.1, max_backoff_s=0.4
        )
        ServingClient(server.url).hang(0.8)
        reply = hangy.recommend(0, k=3)  # first attempts time out, later wins
        assert reply["degraded"] is False


class TestLifecycle:
    def test_ephemeral_port_resolved(self, served) -> None:
        server, _, _ = served
        host, port = server.address
        assert port != 0
        assert server.url == f"http://{host}:{port}"

    def test_close_is_idempotent_and_final(
        self, gowalla_split: SplitDataset
    ) -> None:
        model = RecencyRecommender().fit(gowalla_split, SMALL_WINDOW)
        config = ServiceConfig(
            window=SMALL_WINDOW, n_items=gowalla_split.n_items
        )
        service = service_for_split(model, gowalla_split, config=config)
        server = RecommendServer(service, port=0).start()
        url = server.url
        server.close()
        client = ServingClient(url, timeout=0.5)
        assert client.health() is False
        # The underlying service refuses new work once closed.
        with pytest.raises(ServingError, match="closed"):
            service.recommend(0)

    def test_two_servers_can_coexist(self, gowalla_split: SplitDataset) -> None:
        model = RecencyRecommender().fit(gowalla_split, SMALL_WINDOW)
        config = ServiceConfig(
            window=SMALL_WINDOW, n_items=gowalla_split.n_items
        )
        with RecommendServer(
            service_for_split(model, gowalla_split, config=config), port=0
        ).start() as one, RecommendServer(
            service_for_split(model, gowalla_split, config=config), port=0
        ).start() as two:
            assert one.address != two.address
            assert ServingClient(one.url).health()
            assert ServingClient(two.url).health()
