"""Tests for conflict-free run partitioning (repro.optim.blocks)."""

import numpy as np
import pytest

from repro.optim.blocks import (
    conflict_bounds,
    dependency_batches,
    iter_runs,
)


def _random_updates(rng, n, n_users=7, n_items=12):
    """A block with deliberately heavy row reuse to force conflicts."""
    users = rng.integers(n_users, size=n)
    positives = rng.integers(n_items, size=n)
    # Negatives share the item id space but never equal their own
    # positive, matching the sampler's v_j != v_i guarantee.
    negatives = (positives + 1 + rng.integers(n_items - 1, size=n)) % n_items
    return users, positives, negatives


def _conflicts(users, positives, negatives, i, j):
    """True iff updates i and j touch a common parameter row."""
    if users[i] == users[j]:
        return True
    items_i = {positives[i], negatives[i]}
    items_j = {positives[j], negatives[j]}
    return bool(items_i & items_j)


def _bounds_reference(users, positives, negatives):
    n = len(users)
    bounds = np.full(n, -1, dtype=np.int64)
    for i in range(n):
        for j in range(i - 1, -1, -1):
            if _conflicts(users, positives, negatives, i, j):
                bounds[i] = j
                break
    return bounds


class TestConflictBounds:
    def test_matches_brute_force(self):
        rng = np.random.default_rng(11)
        for n in (1, 2, 5, 30, 200):
            users, positives, negatives = _random_updates(rng, n)
            expected = _bounds_reference(users, positives, negatives)
            actual = conflict_bounds(users, positives, negatives)
            assert np.array_equal(actual, expected)

    def test_cross_role_item_conflict(self):
        # Update 1's positive is update 0's negative: must conflict even
        # though users differ and same-role ids are all distinct.
        users = np.array([0, 1])
        positives = np.array([3, 4])
        negatives = np.array([4, 5])
        assert conflict_bounds(users, positives, negatives).tolist() == [-1, 0]

    def test_empty(self):
        empty = np.empty(0, dtype=np.int64)
        bounds = conflict_bounds(empty, empty, empty)
        assert bounds.size == 0

    def test_mismatched_sizes_raise(self):
        a = np.arange(3)
        with pytest.raises(ValueError, match="must align"):
            conflict_bounds(a, a, np.arange(4))


class TestIterRuns:
    def _runs_reference(self, users, positives, negatives):
        """Greedy set-tracking partition, the definition of a run."""
        n = len(users)
        runs, start = [], 0
        touched = set()
        for i in range(n):
            rows = {("u", users[i]), ("v", positives[i]), ("v", negatives[i])}
            if rows & touched:
                runs.append((start, i))
                start, touched = i, set()
            touched |= rows
        if n:
            runs.append((start, n))
        return runs

    def test_matches_set_based_reference(self):
        rng = np.random.default_rng(23)
        for n in (1, 2, 17, 120):
            users, positives, negatives = _random_updates(rng, n)
            expected = self._runs_reference(users, positives, negatives)
            assert list(iter_runs(users, positives, negatives)) == expected

    def test_runs_tile_the_block(self):
        rng = np.random.default_rng(5)
        users, positives, negatives = _random_updates(rng, 64)
        runs = list(iter_runs(users, positives, negatives))
        assert runs[0][0] == 0 and runs[-1][1] == 64
        for (_, end), (start, _) in zip(runs, runs[1:]):
            assert end == start


class TestDependencyBatches:
    def test_concatenation_is_a_permutation(self):
        rng = np.random.default_rng(31)
        users, positives, negatives = _random_updates(rng, 150)
        batches = dependency_batches(users, positives, negatives)
        flat = np.concatenate(batches)
        assert np.array_equal(np.sort(flat), np.arange(150))

    def test_batches_are_conflict_free(self):
        rng = np.random.default_rng(37)
        users, positives, negatives = _random_updates(rng, 120)
        for batch in dependency_batches(users, positives, negatives):
            # Unique user rows, and the union of item rows (both roles)
            # has no repeats — the kernels' scatter-writes rely on this.
            assert len(set(users[batch])) == batch.size
            items = np.concatenate((positives[batch], negatives[batch]))
            assert len(set(items)) == items.size

    def test_conflicting_pairs_stay_ordered(self):
        rng = np.random.default_rng(41)
        users, positives, negatives = _random_updates(rng, 100)
        batches = dependency_batches(users, positives, negatives)
        batch_of = np.empty(100, dtype=np.int64)
        for b, batch in enumerate(batches):
            batch_of[batch] = b
        for i in range(100):
            for j in range(i + 1, 100):
                if _conflicts(users, positives, negatives, i, j):
                    assert batch_of[i] < batch_of[j]

    def test_preserves_draw_order_within_batch(self):
        rng = np.random.default_rng(43)
        users, positives, negatives = _random_updates(rng, 80)
        for batch in dependency_batches(users, positives, negatives):
            assert np.array_equal(batch, np.sort(batch))

    def test_no_conflicts_is_one_batch(self):
        users = np.arange(6)
        positives = np.arange(6) + 10
        negatives = np.arange(6) + 20
        batches = dependency_batches(users, positives, negatives)
        assert len(batches) == 1
        assert np.array_equal(batches[0], np.arange(6))

    def test_single_chain_is_fully_serial(self):
        users = np.zeros(5, dtype=np.int64)
        positives = np.arange(5) + 1
        negatives = np.arange(5) + 10
        batches = dependency_batches(users, positives, negatives)
        assert [batch.tolist() for batch in batches] == [[0], [1], [2], [3], [4]]

    def test_empty(self):
        empty = np.empty(0, dtype=np.int64)
        assert dependency_batches(empty, empty, empty) == []

    def test_mismatched_sizes_raise(self):
        a = np.arange(4)
        with pytest.raises(ValueError, match="must align"):
            dependency_batches(a, np.arange(3), a)
