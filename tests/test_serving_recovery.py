"""Crash recovery: kill the service mid-stream, restart, replay, compare.

The acceptance bar: a server killed at an arbitrary point of the event
stream (via :class:`~repro.resilience.faults.FaultInjector` on the event
log's write path) and restarted over the same log must reach
**bit-identical** session state (shared ``state_fingerprint`` digest)
and produce **identical recommendations** for the rest of the stream,
compared to an uninterrupted run. Torn trailing bytes — the crash cut a
record short — must be absorbed silently.

Tier 1 covers single deterministic crash points; the multi-point sweep
across the whole stream is ``tier2``.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

import pytest

from conftest import SMALL_WINDOW

from repro.config import WindowConfig
from repro.data.split import SplitDataset
from repro.models.recency import RecencyRecommender
from repro.models.tsppr import TSPPRRecommender
from repro.resilience.faults import FaultInjected, FaultInjector
from repro.serving.events import EventLog
from repro.serving.service import ServiceConfig, service_for_split
from repro.serving.state import LiveSession, SessionStore

from test_serving_service import QUICK

K = 10


def stream_for(split: SplitDataset, users) -> List[Tuple[int, int]]:
    """The interleaved held-out event stream of several users."""
    per_user = {
        user: split.full_sequence(user).items[
            split.train_boundary(user):
        ].tolist()
        for user in users
    }
    stream: List[Tuple[int, int]] = []
    longest = max(len(items) for items in per_user.values())
    for step in range(longest):
        for user in users:
            if step < len(per_user[user]):
                stream.append((user, per_user[user][step]))
    return stream


def config_for(split: SplitDataset) -> ServiceConfig:
    return ServiceConfig(window=SMALL_WINDOW, n_items=split.n_items)


def run_stream(service, stream, start=0) -> List[Optional[List[int]]]:
    """step() the stream; one entry per position (None where no target)."""
    out: List[Optional[List[int]]] = []
    for user, item in stream[start:]:
        result = service.step(user, item, k=K)
        out.append(result.items if result is not None else None)
    return out


def uninterrupted_run(model, split, users, stream, tmp_path):
    """Reference: the full stream through one never-crashing service."""
    log = EventLog.open(tmp_path / "reference.log")
    with service_for_split(
        model, split, event_log=log, config=config_for(split)
    ) as service:
        recs = run_stream(service, stream)
        fingerprints = {u: service.state_fingerprint(u) for u in users}
    return recs, fingerprints


def crash_and_recover(model, split, users, stream, tmp_path, crash_on_write):
    """Run until the injected crash, restart over the log, finish.

    Returns (position the crash interrupted, post-crash recommendations,
    final fingerprints).
    """
    log_path = tmp_path / f"crash{crash_on_write}.log"
    injector = FaultInjector(crash_on_write=crash_on_write)
    log = EventLog.open(log_path, fault_injector=injector)
    service = service_for_split(
        model, split, event_log=log, config=config_for(split)
    )
    crashed_at = None
    for index, (user, item) in enumerate(stream):
        try:
            service.step(user, item, k=K)
        except FaultInjected:
            crashed_at = index
            break
    assert crashed_at is not None, "injector never fired"
    # Simulated hard kill: no close(), no seal — the log is whatever
    # bytes made it to disk.
    recovered_log = EventLog.open(log_path)
    recovered = service_for_split(
        model, split, event_log=recovered_log, config=config_for(split)
    )
    with recovered:
        # The crashed event never committed (the fault fires before the
        # write): the stream resumes from the interrupted position.
        assert len(recovered_log) == crashed_at
        recs = run_stream(recovered, stream, start=crashed_at)
        fingerprints = {u: recovered.state_fingerprint(u) for u in users}
    return crashed_at, recs, fingerprints


class TestCrashRecovery:
    def test_recency_recovers_bit_identical(
        self, gowalla_split: SplitDataset, tmp_path
    ) -> None:
        users = [0, 1, 2, 3]
        model = RecencyRecommender().fit(gowalla_split, SMALL_WINDOW)
        stream = stream_for(gowalla_split, users)
        reference, ref_fps = uninterrupted_run(
            model, gowalla_split, users, stream, tmp_path
        )
        crashed_at, recs, fps = crash_and_recover(
            model, gowalla_split, users, stream, tmp_path, crash_on_write=37
        )
        assert fps == ref_fps
        assert recs == reference[crashed_at:]

    def test_tsppr_recovers_bit_identical(
        self, gowalla_split: SplitDataset, tmp_path
    ) -> None:
        users = [0, 1]
        model = TSPPRRecommender(QUICK).fit(gowalla_split, SMALL_WINDOW)
        stream = stream_for(gowalla_split, users)
        reference, ref_fps = uninterrupted_run(
            model, gowalla_split, users, stream, tmp_path
        )
        crashed_at, recs, fps = crash_and_recover(
            model, gowalla_split, users, stream, tmp_path, crash_on_write=20
        )
        assert fps == ref_fps
        assert recs == reference[crashed_at:]

    def test_torn_write_absorbed(
        self, gowalla_split: SplitDataset, tmp_path
    ) -> None:
        """Crash tears the record mid-bytes: recovery discards the tail."""
        users = [0, 1]
        model = RecencyRecommender().fit(gowalla_split, SMALL_WINDOW)
        stream = stream_for(gowalla_split, users)
        log_path = tmp_path / "torn.log"
        log = EventLog.open(log_path)
        service = service_for_split(
            model, gowalla_split, event_log=log, config=config_for(gowalla_split)
        )
        interrupted = 25
        for user, item in stream[:interrupted]:
            service.step(user, item, k=K)
        # Tear the next record by hand: half its bytes reach the disk.
        from repro.serving.events import Event

        next_user, next_item = stream[interrupted]
        line = Event(seq=len(log), user=next_user, item=next_item).to_line()
        with log_path.open("a", encoding="utf-8") as handle:
            handle.write(line[: len(line) // 2])
        recovered_log = EventLog.open(log_path)
        assert recovered_log.n_discarded_tail == 1
        assert len(recovered_log) == interrupted
        with service_for_split(
            model,
            gowalla_split,
            event_log=recovered_log,
            config=config_for(gowalla_split),
        ) as recovered:
            # The torn event replays cleanly and the stream continues.
            run_stream(recovered, stream, start=interrupted)

    def test_recovery_with_tight_capacity(
        self, gowalla_split: SplitDataset, tmp_path
    ) -> None:
        """Eviction during recovery must not change the outcome."""
        users = [0, 1, 2, 3]
        model = RecencyRecommender().fit(gowalla_split, SMALL_WINDOW)
        stream = stream_for(gowalla_split, users)
        reference, ref_fps = uninterrupted_run(
            model, gowalla_split, users, stream, tmp_path
        )
        log_path = tmp_path / "tight.log"
        injector = FaultInjector(crash_on_write=30)
        log = EventLog.open(log_path, fault_injector=injector)
        service = service_for_split(
            model,
            gowalla_split,
            event_log=log,
            config=config_for(gowalla_split),
            capacity=2,  # half the users fit: constant eviction churn
        )
        crashed_at = None
        for index, (user, item) in enumerate(stream):
            try:
                service.step(user, item, k=K)
            except FaultInjected:
                crashed_at = index
                break
        assert crashed_at is not None
        recovered_log = EventLog.open(log_path)
        with service_for_split(
            model,
            gowalla_split,
            event_log=recovered_log,
            config=config_for(gowalla_split),
            capacity=2,
        ) as recovered:
            recs = run_stream(recovered, stream, start=crashed_at)
            fps = {u: recovered.state_fingerprint(u) for u in users}
        assert fps == ref_fps
        assert recs == reference[crashed_at:]
        assert recovered_log._by_user  # the log really was exercised


def concurrent_crash(
    model, split, tmp_path, crash_on_write, tag
) -> Tuple[Dict[int, List[int]], EventLog]:
    """Two writer threads share one WAL until an injected kill lands.

    Each thread streams its own users through ``service.ingest`` (the
    write-ahead path), recording which appends were *acknowledged*. The
    injected fault kills one append mid-stream; afterwards torn trailing
    bytes are planted to simulate the record the kill cut short.
    Returns the per-user acknowledged streams and the recovered log.
    """
    log_path = tmp_path / f"concurrent{tag}.log"
    injector = FaultInjector(crash_on_write=crash_on_write)
    log = EventLog.open(log_path, fault_injector=injector)
    service = service_for_split(
        model, split, event_log=log, config=config_for(split)
    )
    acked: Dict[int, List[int]] = {}
    stop = threading.Event()

    def writer(users: List[int]) -> None:
        for user, item in stream_for(split, users):
            if stop.is_set():
                return
            try:
                service.ingest(user, item)
            except FaultInjected:
                stop.set()
                return
            acked.setdefault(user, []).append(item)

    threads = [
        threading.Thread(target=writer, args=([0, 2],)),
        threading.Thread(target=writer, args=([1, 3],)),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60.0)
    assert stop.is_set(), "injected kill never landed"
    # Simulated hard kill: no close(), no seal — and the record the
    # crash interrupted left half its bytes behind.
    with log_path.open("a", encoding="utf-8") as handle:
        handle.write('{"seq":999999,"user":0,"it')
    recovered = EventLog.open(log_path)
    assert recovered.n_discarded_tail == 1
    return acked, recovered


def assert_replay_matches_acknowledged(
    split: SplitDataset, acked: Dict[int, List[int]], recovered: EventLog
) -> None:
    """Replay == exactly the acknowledged pre-kill prefix, bit-identical.

    Durability: every acknowledged append is in the replayed log, in
    order, and nothing else. Bit-identity: rehydrating through the
    SessionStore (base history + ``event_source`` replay — the recovery
    path) fingerprints identically to building a fresh
    :class:`LiveSession` and applying the acknowledged events directly
    (the live path) — two independent code paths, one digest.
    """
    for user, items in acked.items():
        assert recovered.events_for(user) == items
    assert sorted(recovered.users()) == sorted(
        user for user, items in acked.items() if items
    )
    store = SessionStore(
        SMALL_WINDOW.window_size,
        SMALL_WINDOW.min_gap,
        capacity=8,
        history_provider=split.train_sequence,
        event_source=recovered.events_for,
    )
    for user, items in acked.items():
        direct = LiveSession(
            user,
            SMALL_WINDOW.window_size,
            SMALL_WINDOW.min_gap,
            history=split.train_sequence(user),
        )
        for item in items:
            direct.append(item)
        assert (
            store.get(user).state_fingerprint()
            == direct.state_fingerprint()
        ), f"user {user} state diverged after concurrent crash"


class TestConcurrentTornTail:
    def test_two_writers_killed_mid_record(
        self, gowalla_split: SplitDataset, tmp_path
    ) -> None:
        model = RecencyRecommender().fit(gowalla_split, SMALL_WINDOW)
        acked, recovered = concurrent_crash(
            model, gowalla_split, tmp_path, crash_on_write=41, tag="t1"
        )
        assert_replay_matches_acknowledged(gowalla_split, acked, recovered)

    @pytest.mark.tier2
    def test_sweep_kill_points(
        self, gowalla_split: SplitDataset, tmp_path
    ) -> None:
        """The kill lands at many different writes; every one recovers."""
        model = RecencyRecommender().fit(gowalla_split, SMALL_WINDOW)
        for crash_on_write in range(1, 80, 6):
            acked, recovered = concurrent_crash(
                model,
                gowalla_split,
                tmp_path,
                crash_on_write=crash_on_write,
                tag=crash_on_write,
            )
            assert_replay_matches_acknowledged(
                gowalla_split, acked, recovered
            )


@pytest.mark.tier2
class TestCrashSweep:
    """Every 7th write of the stream as a crash point (slow, tier2)."""

    def test_sweep_recency(self, gowalla_split: SplitDataset, tmp_path) -> None:
        users = [0, 1, 2]
        model = RecencyRecommender().fit(gowalla_split, SMALL_WINDOW)
        stream = stream_for(gowalla_split, users)
        reference, ref_fps = uninterrupted_run(
            model, gowalla_split, users, stream, tmp_path
        )
        n_writes = len(stream)
        for crash_on_write in range(1, n_writes, 7):
            crashed_at, recs, fps = crash_and_recover(
                model,
                gowalla_split,
                users,
                stream,
                tmp_path,
                crash_on_write=crash_on_write,
            )
            assert fps == ref_fps, f"fingerprints diverge at {crash_on_write}"
            assert recs == reference[crashed_at:], (
                f"recommendations diverge at crash point {crash_on_write}"
            )
