"""Tests for repro.logging_utils."""

import logging

from repro.logging_utils import enable_console_logging, get_logger, log_duration


class TestGetLogger:
    def test_default_is_package_root(self):
        assert get_logger().name == "repro"

    def test_name_is_namespaced(self):
        assert get_logger("models.tsppr").name == "repro.models.tsppr"

    def test_already_namespaced_untouched(self):
        assert get_logger("repro.data").name == "repro.data"


class TestEnableConsoleLogging:
    def test_idempotent_handler_attachment(self):
        logger = enable_console_logging()
        n_handlers = len(logger.handlers)
        enable_console_logging()
        assert len(logger.handlers) == n_handlers

    def test_sets_level(self):
        logger = enable_console_logging(logging.WARNING)
        assert logger.level == logging.WARNING
        enable_console_logging(logging.INFO)  # restore


class TestLogDuration:
    def test_logs_at_debug(self, caplog):
        logger = get_logger("test_timing")
        with caplog.at_level(logging.DEBUG, logger="repro.test_timing"):
            with log_duration(logger, "unit of work"):
                pass
        assert any("unit of work" in record.message for record in caplog.records)

    def test_logs_even_on_exception(self, caplog):
        logger = get_logger("test_timing")
        with caplog.at_level(logging.DEBUG, logger="repro.test_timing"):
            try:
                with log_duration(logger, "failing work"):
                    raise RuntimeError("boom")
            except RuntimeError:
                pass
        assert any("failing work" in record.message for record in caplog.records)
