"""Tests for the CLI's journal/resume/retry machinery.

A fake experiment is patched into the registry so the lifecycle can be
driven without training anything.
"""

import json

import pytest

from repro.cli import main
from repro.experiments import registry
from repro.resilience.journal import RunJournal


class _FlakyRunner:
    """Fails the first ``failures`` calls, then succeeds."""

    def __init__(self, failures):
        self.failures = failures
        self.calls = 0

    def __call__(self, scale):
        self.calls += 1
        if self.calls <= self.failures:
            raise RuntimeError(f"injected failure #{self.calls}")
        return registry.ExperimentResult(
            experiment_id="figtest", title="Fake experiment"
        )


@pytest.fixture()
def fake_experiment(monkeypatch):
    runner = _FlakyRunner(failures=0)
    monkeypatch.setitem(registry._RUNNERS, "figtest", ("Fake experiment", runner))
    return runner


class TestJournalRun:
    def test_success_records_done(self, fake_experiment, tmp_path, capsys):
        journal_path = tmp_path / "j.json"
        code = main(
            ["run", "figtest", "--scale", "smoke", "--journal", str(journal_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "journal: 1 done, 0 failed, 0 skipped" in out
        payload = json.loads(journal_path.read_text())
        assert payload["experiments"]["figtest"]["status"] == "done"
        assert payload["experiments"]["figtest"]["attempts"] == 1

    def test_failure_exits_nonzero_and_records_error(
        self, fake_experiment, tmp_path, capsys
    ):
        fake_experiment.failures = 99
        journal_path = tmp_path / "j.json"
        code = main(
            ["run", "figtest", "--scale", "smoke", "--journal", str(journal_path)]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "journal: 0 done, 1 failed, 0 skipped" in captured.out
        assert "injected failure" in captured.err
        entry = RunJournal.load(journal_path).entry("figtest")
        assert entry.status == "failed"
        assert entry.attempts == 1
        assert "RuntimeError" in entry.error

    def test_retry_recovers_flaky_experiment(
        self, fake_experiment, tmp_path, capsys
    ):
        fake_experiment.failures = 1
        journal_path = tmp_path / "j.json"
        code = main(
            [
                "run", "figtest", "--scale", "smoke",
                "--journal", str(journal_path), "--retries", "1",
            ]
        )
        assert code == 0
        assert fake_experiment.calls == 2
        entry = RunJournal.load(journal_path).entry("figtest")
        assert entry.status == "done"
        assert entry.attempts == 2
        assert entry.error is None

    def test_resume_skips_done(self, fake_experiment, tmp_path, capsys):
        journal_path = tmp_path / "j.json"
        RunJournal(journal_path).mark("figtest", "done")
        code = main(
            [
                "run", "figtest", "--scale", "smoke",
                "--journal", str(journal_path), "--resume",
            ]
        )
        assert code == 0
        assert fake_experiment.calls == 0, "done experiment must not rerun"
        assert "1 skipped" in capsys.readouterr().out

    def test_resume_reruns_failed(self, fake_experiment, tmp_path):
        journal_path = tmp_path / "j.json"
        journal = RunJournal(journal_path)
        journal.mark("figtest", "running")
        journal.mark("figtest", "failed", error="earlier crash")
        code = main(
            [
                "run", "figtest", "--scale", "smoke",
                "--journal", str(journal_path), "--resume",
            ]
        )
        assert code == 0
        assert fake_experiment.calls == 1
        entry = RunJournal.load(journal_path).entry("figtest")
        assert entry.status == "done"
        assert entry.attempts == 2  # one from the earlier run, one now


class TestFlagValidation:
    def test_resume_requires_journal(self):
        with pytest.raises(SystemExit):
            main(["run", "figtest", "--resume"])

    def test_retries_require_journal(self):
        with pytest.raises(SystemExit):
            main(["run", "figtest", "--retries", "2"])

    def test_negative_retries_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "run", "figtest", "--retries", "-1",
                    "--journal", str(tmp_path / "j.json"),
                ]
            )
