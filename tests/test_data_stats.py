"""Tests for repro.data.stats."""

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.stats import (
    distinct_items_per_user,
    item_popularity_profile,
    per_user_repeat_ratio,
    repeat_gap_histogram,
    sequence_length_summary,
)


class TestPerUserRepeatRatio:
    def test_hand_computed(self, tiny_dataset):
        ratios = per_user_repeat_ratio(tiny_dataset, window_size=100)
        assert ratios[0] == pytest.approx(3 / 5)  # repeats at t=2,4,5
        assert ratios[1] == pytest.approx(4 / 5)
        assert ratios[2] == pytest.approx(1.0)
        assert ratios[3] == pytest.approx(0.0)

    def test_window_limits_lookback(self):
        dataset = Dataset.from_user_items([[0, 1, 2, 0]], n_items=3)
        assert per_user_repeat_ratio(dataset, window_size=2)[0] == 0.0
        assert per_user_repeat_ratio(dataset, window_size=3)[0] == pytest.approx(1 / 3)

    def test_single_event_user(self):
        dataset = Dataset.from_user_items([[0]], n_items=1)
        assert per_user_repeat_ratio(dataset)[0] == 0.0


class TestRepeatGapHistogram:
    def test_counts_gaps(self, tiny_dataset):
        histogram = repeat_gap_histogram(tiny_dataset, max_gap=10)
        # user 2 alone contributes five gap-1 pairs; user 1 none at gap 1.
        assert histogram[1] == 5
        # user 0: item 0 pairs (0,2) and (2,4); user 1: items 3 and 4 with
        # two gap-2 pairs each. Total six gap-2 pairs.
        assert histogram[2] == 6
        # user 0: item 1 pair (1,5).
        assert histogram[4] == 1

    def test_overflow_folds_into_last_bin(self):
        dataset = Dataset.from_user_items([[0, 1, 1, 2, 3, 4, 0]], n_items=5)
        histogram = repeat_gap_histogram(dataset, max_gap=3)
        assert histogram[3] == 1  # the gap-6 pair folded to bin 3
        assert histogram[1] == 1

    def test_rejects_bad_max_gap(self, tiny_dataset):
        with pytest.raises(ValueError):
            repeat_gap_histogram(tiny_dataset, max_gap=0)

    def test_total_pairs(self, tiny_dataset):
        histogram = repeat_gap_histogram(tiny_dataset, max_gap=50)
        total_pairs = sum(
            max(0, len(seq.positions_of(item)) - 1)
            for seq in tiny_dataset
            for item in set(seq.items.tolist())
        )
        assert histogram.sum() == total_pairs


class TestProfiles:
    def test_popularity_profile_monotone(self, gowalla_dataset):
        profile = item_popularity_profile(gowalla_dataset)
        assert np.all(np.diff(profile) >= 0)

    def test_popularity_profile_empty_dataset(self):
        dataset = Dataset.from_user_items([], n_items=0)
        assert item_popularity_profile(dataset).tolist() == [0.0] * 11

    def test_sequence_length_summary(self, tiny_dataset):
        summary = sequence_length_summary(tiny_dataset)
        assert summary == {"min": 6.0, "median": 6.0, "mean": 6.0, "max": 6.0}

    def test_distinct_items_per_user(self, tiny_dataset):
        counts = distinct_items_per_user(tiny_dataset)
        assert counts.tolist() == [3, 2, 1, 6]
