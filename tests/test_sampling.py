"""Tests for repro.sampling (quadruple pre-sampling and schedules)."""

import numpy as np
import pytest

from repro.config import SplitConfig, WindowConfig
from repro.data.dataset import Dataset
from repro.data.split import temporal_split
from repro.exceptions import SamplingError
from repro.sampling.quadruples import (
    sample_quadruples,
    sample_quadruples_reference,
)
from repro.sampling.schedule import UserUniformSchedule, small_batch_indices
from repro.windows.repeat import is_valid_target, recent_items, window_before

WINDOW = WindowConfig(window_size=10, min_gap=2)


def _split_of(user_items, fraction=0.75):
    dataset = Dataset.from_user_items(user_items)
    return temporal_split(
        dataset, SplitConfig(train_fraction=fraction, min_train_length=1)
    )


class TestSampleQuadruples:
    def test_every_quadruple_is_valid(self, gowalla_split):
        window = WindowConfig()
        quadruples = sample_quadruples(
            gowalla_split, window, n_negatives=3, random_state=0
        )
        assert len(quadruples) > 0
        for index in range(len(quadruples)):
            user, positive, negative, t = quadruples.row(index)
            sequence = gowalla_split.full_sequence(user)
            # Positive is the actual consumption and a valid target.
            assert int(sequence[t]) == positive
            assert t < gowalla_split.train_boundary(user)
            assert is_valid_target(sequence, t, window.window_size, window.min_gap)
            # Negative is a window candidate, distinct, and not recent.
            view = window_before(sequence, t, window.window_size)
            assert negative in view
            assert negative != positive
            assert negative not in recent_items(sequence, t, window.min_gap)

    def test_respects_n_negatives(self):
        # One user cycling 6 items with period 6: each repeat has gap 6;
        # the window holds all 6 distinct items, Ω=2 excludes the last
        # two, and the positive itself is excluded -> 3 eligible
        # negatives, so exactly min(S, 3) per positive.
        split = _split_of([list(range(6)) * 10])
        for s, expected in [(2, 2), (5, 3), (10, 3)]:
            quadruples = sample_quadruples(split, WINDOW, n_negatives=s, random_state=3)
            per_positive: dict = {}
            for index in range(len(quadruples)):
                _, _, _, t = quadruples.row(index)
                per_positive[t] = per_positive.get(t, 0) + 1
            assert set(per_positive.values()) == {expected}

    def test_no_duplicate_negatives_per_positive(self, gowalla_split):
        quadruples = sample_quadruples(
            gowalla_split, WindowConfig(), n_negatives=5, random_state=1
        )
        seen = {}
        for index in range(len(quadruples)):
            user, positive, negative, t = quadruples.row(index)
            key = (user, t)
            seen.setdefault(key, set())
            assert negative not in seen[key]
            seen[key].add(negative)

    def test_deterministic_given_seed(self, gowalla_split):
        a = sample_quadruples(gowalla_split, WINDOW, 3, random_state=9)
        b = sample_quadruples(gowalla_split, WINDOW, 3, random_state=9)
        assert np.array_equal(a.users, b.users)
        assert np.array_equal(a.negatives, b.negatives)

    def test_raises_when_nothing_to_sample(self):
        split = _split_of([[0, 1, 2, 3, 4, 5, 6, 7]])  # no repeats at all
        with pytest.raises(SamplingError, match="no training quadruples"):
            sample_quadruples(split, WINDOW, n_negatives=2)

    def test_rejects_nonpositive_negatives(self, gowalla_split):
        with pytest.raises(SamplingError, match="n_negatives"):
            sample_quadruples(gowalla_split, WINDOW, n_negatives=0)

    def test_per_user_index_is_consistent(self, gowalla_split):
        quadruples = sample_quadruples(gowalla_split, WINDOW, 3, random_state=2)
        for user, rows in quadruples.per_user.items():
            assert np.all(quadruples.users[rows] == user)
            # Times ascend within a user (scan order).
            times = quadruples.times[rows]
            assert np.all(np.diff(times) >= 0)


class TestSamplerEquivalence:
    """Fast sampler must replay the seed reference exactly, rng and all."""

    @pytest.mark.parametrize("n_negatives", [1, 3, 10])
    def test_bit_identical_to_reference(self, gowalla_split, n_negatives):
        fast = sample_quadruples(
            gowalla_split, WINDOW, n_negatives, random_state=31
        )
        reference = sample_quadruples_reference(
            gowalla_split, WINDOW, n_negatives, random_state=31
        )
        assert np.array_equal(fast.users, reference.users)
        assert np.array_equal(fast.positives, reference.positives)
        assert np.array_equal(fast.negatives, reference.negatives)
        assert np.array_equal(fast.times, reference.times)
        assert set(fast.per_user) == set(reference.per_user)
        for user, rows in fast.per_user.items():
            assert np.array_equal(rows, reference.per_user[user])


class TestUserUniformSchedule:
    def test_draws_cover_all_users(self, gowalla_split):
        quadruples = sample_quadruples(gowalla_split, WINDOW, 3, random_state=2)
        schedule = UserUniformSchedule(quadruples, random_state=5)
        drawn_users = {
            int(quadruples.users[schedule.draw()]) for _ in range(500)
        }
        assert drawn_users == set(quadruples.per_user)

    def test_user_balance(self):
        # User 0 has ~5x the quadruples of user 1; the schedule should
        # still draw both users about equally often.
        split = _split_of(
            [list(range(4)) * 30, list(range(4)) * 8],
            fraction=0.9,
        )
        quadruples = sample_quadruples(split, WINDOW, 2, random_state=0)
        counts = {0: 0, 1: 0}
        schedule = UserUniformSchedule(quadruples, random_state=11)
        for index in schedule.draw_many(4000):
            counts[int(quadruples.users[index])] += 1
        ratio = counts[0] / counts[1]
        assert 0.8 < ratio < 1.25

    def test_draw_many_matches_domain(self, gowalla_split):
        quadruples = sample_quadruples(gowalla_split, WINDOW, 3, random_state=2)
        schedule = UserUniformSchedule(quadruples, random_state=5)
        indices = schedule.draw_many(100)
        assert indices.shape == (100,)
        assert indices.min() >= 0
        assert indices.max() < len(quadruples)

    def test_draw_many_negative_rejected(self, gowalla_split):
        quadruples = sample_quadruples(gowalla_split, WINDOW, 3, random_state=2)
        schedule = UserUniformSchedule(quadruples, random_state=5)
        with pytest.raises(SamplingError):
            schedule.draw_many(-1)

    def test_draw_many_is_stream_exact(self, gowalla_split):
        # The block SGD mode swaps draw() for draw_many() mid-training
        # (checkpoint resume restores the rng and continues with either),
        # so draw_many(n) must consume the rng stream exactly as n
        # scalar draw() calls would — same bounds, same call sequence.
        quadruples = sample_quadruples(gowalla_split, WINDOW, 3, random_state=2)
        scalar = UserUniformSchedule(quadruples, random_state=17)
        block = UserUniformSchedule(quadruples, random_state=17)
        expected = [scalar.draw() for _ in range(256)]
        assert block.draw_many(256).tolist() == expected

    def test_draw_and_draw_many_interleave(self, gowalla_split):
        quadruples = sample_quadruples(gowalla_split, WINDOW, 3, random_state=2)
        scalar = UserUniformSchedule(quadruples, random_state=19)
        mixed = UserUniformSchedule(quadruples, random_state=19)
        expected = [scalar.draw() for _ in range(70)]
        got = (
            mixed.draw_many(30).tolist()
            + [mixed.draw() for _ in range(10)]
            + mixed.draw_many(30).tolist()
        )
        assert got == expected


class TestSmallBatchIndices:
    def test_takes_first_fraction_per_user(self, gowalla_split):
        quadruples = sample_quadruples(gowalla_split, WINDOW, 3, random_state=2)
        batch = small_batch_indices(quadruples, fraction=0.1)
        batch_set = set(batch.tolist())
        for user, rows in quadruples.per_user.items():
            expected = max(1, int(np.floor(rows.size * 0.1)))
            selected = [r for r in rows.tolist() if r in batch_set]
            assert selected == rows[:expected].tolist()

    @pytest.fixture()
    def cyclic_quadruples(self):
        split = _split_of([[0, 1, 2, 3] * 6, [4, 5, 6, 7] * 6])
        return sample_quadruples(
            split, WindowConfig(window_size=8, min_gap=2), 2, random_state=2
        )

    def test_at_least_one_per_user(self, cyclic_quadruples):
        batch = small_batch_indices(cyclic_quadruples, fraction=0.01)
        users_in_batch = {int(cyclic_quadruples.users[i]) for i in batch}
        assert users_in_batch == set(cyclic_quadruples.per_user)

    def test_fraction_one_selects_everything(self, cyclic_quadruples):
        batch = small_batch_indices(cyclic_quadruples, fraction=1.0)
        assert sorted(batch.tolist()) == list(range(len(cyclic_quadruples)))

    def test_bad_fraction_rejected(self, cyclic_quadruples):
        with pytest.raises(SamplingError):
            small_batch_indices(cyclic_quadruples, fraction=0.0)
