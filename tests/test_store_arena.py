"""Units for the columnar session-memory arena and the HistoryStore API.

Covers the arena columns themselves (validation, zero-copy slicing,
save/open round-trips), both store implementations, the fixed-size
:class:`~repro.store.session.StoreSession`, and the deterministic memory
accounting. Cross-representation equivalence under random schedules
lives in ``test_store_equivalence.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.sequence import ConsumptionSequence
from repro.engine.session import ScoringSession, fingerprint_history
from repro.exceptions import DataError, StoreError
from repro.store import (
    ArenaHistoryStore,
    ArenaHistoryView,
    DictHistoryStore,
    SessionArena,
    StoreSession,
    deep_sizeof,
    make_history_store,
    store_memory_profile,
)

HISTORIES = [
    [0, 1, 0, 2, 0, 1],
    [3, 4, 3, 4],
    [],
    [5] * 7,
]


class TestSessionArena:
    def test_from_histories_layout(self):
        arena = SessionArena.from_histories(HISTORIES)
        assert arena.n_users == 4
        assert arena.n_events == sum(len(h) for h in HISTORIES)
        assert arena.items.dtype == np.int32
        assert arena.offsets.dtype == np.int64
        for user, history in enumerate(HISTORIES):
            assert arena.length(user) == len(history)
            assert arena.user_items(user).tolist() == history

    def test_user_items_is_zero_copy(self):
        arena = SessionArena.from_histories(HISTORIES)
        assert np.shares_memory(arena.user_items(0), arena.items)

    def test_columns_are_read_only(self):
        arena = SessionArena.from_histories(HISTORIES)
        with pytest.raises(ValueError):
            arena.items[0] = 99

    def test_out_of_range_user_is_empty(self):
        arena = SessionArena.from_histories(HISTORIES)
        assert arena.length(99) == 0
        assert arena.user_items(99).size == 0

    def test_rejects_negative_items(self):
        with pytest.raises(StoreError):
            SessionArena.from_histories([[0, -1]])

    def test_rejects_items_beyond_int32(self):
        with pytest.raises(StoreError):
            SessionArena.from_histories([[2**31]])

    def test_rejects_bad_offsets(self):
        items = np.array([1, 2, 3], dtype=np.int32)
        with pytest.raises(StoreError):
            SessionArena(items, np.array([0, 2], dtype=np.int64))
        with pytest.raises(StoreError):
            SessionArena(items, np.array([1, 3], dtype=np.int64))
        with pytest.raises(StoreError):
            SessionArena(items, np.array([0, 2, 1, 3], dtype=np.int64))

    def test_rejects_wrong_dtypes(self):
        with pytest.raises(StoreError):
            SessionArena(
                np.array([1], dtype=np.int64),
                np.array([0, 1], dtype=np.int64),
            )
        with pytest.raises(StoreError):
            SessionArena(
                np.array([1], dtype=np.int32),
                np.array([0, 1], dtype=np.int32),
            )

    def test_stamps_align_with_items(self):
        stamps = [[10, 11, 12, 13, 14, 15], [20, 21, 22, 23], [], [30] * 7]
        arena = SessionArena.from_histories(HISTORIES, stamps=stamps)
        assert arena.user_stamps(1).tolist() == [20, 21, 22, 23]
        with pytest.raises(StoreError):
            SessionArena.from_histories(HISTORIES, stamps=[[1]])

    def test_save_open_roundtrip(self, tmp_path):
        directory = str(tmp_path / "arena")
        arena = SessionArena.from_histories(HISTORIES)
        assert not SessionArena.exists(directory)
        arena.save(directory)
        assert SessionArena.exists(directory)
        for mmap in (True, False):
            reopened = SessionArena.open(directory, mmap=mmap)
            assert isinstance(reopened.items, np.memmap) is mmap
            for user, history in enumerate(HISTORIES):
                assert reopened.user_items(user).tolist() == history

    def test_open_missing_directory_raises(self, tmp_path):
        with pytest.raises(StoreError):
            SessionArena.open(str(tmp_path / "nope"))


class TestArenaHistoryView:
    def test_behaves_like_consumption_sequence(self):
        arena = SessionArena.from_histories(HISTORIES)
        view = ArenaHistoryView(0, arena.user_items(0))
        reference = ConsumptionSequence(0, HISTORIES[0])
        assert len(view) == len(reference)
        assert list(view) == list(reference)
        for t in range(len(reference) + 1):
            for item in set(HISTORIES[0]):
                assert view.last_position_before(
                    item, t
                ) == reference.last_position_before(item, t)

    def test_construction_copies_nothing(self):
        arena = SessionArena.from_histories(HISTORIES)
        raw = arena.user_items(0)
        view = ArenaHistoryView(0, raw)
        assert np.shares_memory(view.items, arena.items)


@pytest.mark.parametrize("kind", ["dict", "arena"])
class TestHistoryStoreProtocol:
    """Contracts both implementations must satisfy identically."""

    def build(self, kind):
        return make_history_store(HISTORIES, kind=kind)

    def test_slice_contents(self, kind):
        store = self.build(kind)
        for user, history in enumerate(HISTORIES):
            view = store.slice(user)
            if not history:
                assert view is None
            else:
                assert view.items.tolist() == history
                assert view.user == user

    def test_slice_unknown_user_is_none(self, kind):
        assert self.build(kind).slice(999) is None

    def test_append_positions_and_fusion(self, kind):
        store = self.build(kind)
        base = len(HISTORIES[0])
        assert store.append(0, 9) == base
        assert store.append(0, 8) == base + 1
        assert store.base_length(0) == base
        assert store.live_count(0) == 2
        assert store.length(0) == base + 2
        assert store.slice(0).items.tolist() == HISTORIES[0] + [9, 8]

    def test_cold_user_grows_from_empty(self, kind):
        store = self.build(kind)
        assert store.append(777, 3) == 0
        assert store.base_length(777) == 0
        assert store.live_count(777) == 1
        assert store.slice(777).items.tolist() == [3]

    def test_item_at(self, kind):
        store = self.build(kind)
        store.append(1, 6)
        assert store.item_at(1, 0) == HISTORIES[1][0]
        assert store.item_at(1, len(HISTORIES[1])) == 6
        with pytest.raises(StoreError):
            store.item_at(1, len(HISTORIES[1]) + 1)
        with pytest.raises(StoreError):
            store.item_at(1, -1)

    def test_recent_items_spans_base_and_tail(self, kind):
        store = self.build(kind)
        store.append(0, 9)
        assert store.recent_items(0, 3).tolist() == [0, 1, 9]
        assert store.recent_items(0, 100).tolist() == HISTORIES[0] + [9]
        assert store.recent_items(0, 0).size == 0
        assert store.recent_items(2, 5).size == 0

    def test_users_lists_active_histories(self, kind):
        store = self.build(kind)
        assert list(store.users()) == [0, 1, 3]
        store.append(2, 1)
        store.append(42, 5)
        assert list(store.users()) == [0, 1, 2, 3, 42]

    def test_fingerprint_matches_scoring_session(self, kind):
        store = self.build(kind)
        store.append(0, 2)
        items = HISTORIES[0] + [2]
        session = ScoringSession(
            ConsumptionSequence(0, items), 4, min_gap=2, start=len(items)
        )
        assert store.fingerprint(0, 4, 2) == session.state_fingerprint()
        assert store.fingerprint(0, 4, 2) == fingerprint_history(
            0, np.asarray(items), 4, 2
        )

    def test_rejects_negative_ids(self, kind):
        store = self.build(kind)
        with pytest.raises(StoreError):
            store.append(-1, 0)
        with pytest.raises(StoreError):
            store.append(0, -1)


class TestArenaHistoryStore:
    def test_base_slice_is_zero_copy(self):
        store = ArenaHistoryStore.from_histories(HISTORIES)
        view = store.slice(0)
        assert isinstance(view, ArenaHistoryView)
        assert np.shares_memory(view.items, store.arena.items)

    def test_fused_view_is_cached_until_append(self):
        store = ArenaHistoryStore.from_histories(HISTORIES)
        store.append(0, 9)
        first = store.slice(0)
        assert store.slice(0) is first
        store.append(0, 8)
        second = store.slice(0)
        assert second is not first
        assert second.items.tolist() == HISTORIES[0] + [9, 8]

    def test_append_rejects_items_beyond_int32(self):
        store = ArenaHistoryStore.from_histories(HISTORIES)
        with pytest.raises(StoreError):
            store.append(0, 2**31)

    def test_tail_doubles_past_initial_capacity(self):
        store = ArenaHistoryStore.from_histories([[]])
        for i in range(50):
            store.append(0, i)
        assert store.live_count(0) == 50
        assert store.slice(0).items.tolist() == list(range(50))

    def test_compact_preserves_contents_and_fingerprints(self):
        store = ArenaHistoryStore.from_histories(HISTORIES)
        for item in (7, 8, 9):
            store.append(0, item)
        store.append(5, 1)  # tail-only user beyond the arena
        before = {
            user: (store.slice(user).items.tolist(), store.fingerprint(user, 4, 2))
            for user in store.users()
        }
        assert store.n_tail_events == 4
        store.compact()
        assert store.n_tail_events == 0
        assert store.live_count(0) == 0
        assert store.base_length(0) == len(HISTORIES[0]) + 3
        for user, (items, digest) in before.items():
            assert store.slice(user).items.tolist() == items
            assert store.fingerprint(user, 4, 2) == digest

    def test_compact_without_tails_is_identity(self):
        store = ArenaHistoryStore.from_histories(HISTORIES)
        arena = store.arena
        assert store.compact() is arena

    def test_stamps_recorded_through_compaction(self):
        store = ArenaHistoryStore.from_histories(
            HISTORIES, record_stamps=True
        )
        store.append(0, 9, t=1234)
        store.append(0, 8)
        arena = store.compact()
        stamps = arena.user_stamps(0).tolist()
        assert stamps[-2:] == [1234, -1]
        assert stamps[: len(HISTORIES[0])] == [-1] * len(HISTORIES[0])

    def test_open_reuses_saved_columns(self, tmp_path):
        directory = str(tmp_path / "arena")
        SessionArena.from_histories(HISTORIES).save(directory)
        store = ArenaHistoryStore.open(directory)
        assert isinstance(store.arena.items, np.memmap)
        assert store.slice(0).items.tolist() == HISTORIES[0]


class TestMakeHistoryStore:
    def test_kinds(self, tmp_path):
        assert isinstance(make_history_store(HISTORIES, "dict"), DictHistoryStore)
        assert isinstance(make_history_store(HISTORIES, "arena"), ArenaHistoryStore)
        mmap_store = make_history_store(
            HISTORIES, "arena-mmap", directory=str(tmp_path / "a")
        )
        assert isinstance(mmap_store.arena.items, np.memmap)

    def test_unknown_kind_raises(self):
        with pytest.raises(StoreError):
            make_history_store(HISTORIES, "redis")

    def test_arena_mmap_reuses_existing_directory(self, tmp_path):
        directory = str(tmp_path / "shared")
        make_history_store(HISTORIES, "arena-mmap", directory=directory)
        # A second open with *different* histories must not repack: the
        # saved columns win, which is how cluster shards share one copy.
        again = make_history_store([[9, 9]], "arena-mmap", directory=directory)
        assert again.slice(0).items.tolist() == HISTORIES[0]


class TestStoreSession:
    WS, MG = 4, 2

    def sessions(self):
        store = ArenaHistoryStore.from_histories(HISTORIES)
        return store, store.session(0, self.WS, self.MG)

    def test_seeded_from_history(self):
        _, session = self.sessions()
        assert session.t == len(HISTORIES[0])
        # history ...2, 0, 1 → window [0, 2, 0, 1], Ω = {0, 1}
        assert session.window_length() == self.WS
        assert session.window_count(0) == 2
        assert session.candidates() == [2]

    def test_append_updates_store_and_state(self):
        store, session = self.sessions()
        position = session.append(2)
        assert position == len(HISTORIES[0])
        assert store.live_count(0) == 1
        assert session.t == len(HISTORIES[0]) + 1
        assert session.sequence().items.tolist() == HISTORIES[0] + [2]

    def test_two_writers_detected(self):
        store, session = self.sessions()
        store.append(0, 5)
        with pytest.raises(DataError):
            session.append(6)

    def test_n_live_events_survives_session_loss(self):
        store, session = self.sessions()
        session.append(2)
        rebuilt = store.session(0, self.WS, self.MG)
        assert rebuilt.n_live_events == 1
        assert rebuilt.t == session.t

    def test_last_position_falls_back_past_ring(self):
        store = ArenaHistoryStore.from_histories([[7] + [1, 2, 3, 4] * 3])
        session = store.session(0, self.WS, self.MG)
        assert session.last_position(7) == 0  # far outside the ring span
        assert session.last_position(4) == 12
        assert session.last_position(99) == -1
        assert session.last_positions([7, 4, 99]).tolist() == [0, 12, -1]

    def test_is_next_target_matches_definition(self):
        _, session = self.sessions()
        # window multiset {0:2, 1:1, 2:1}, Ω multiset {0, 1}
        assert session.is_next_target(2)
        assert not session.is_next_target(0)  # inside Ω
        assert not session.is_next_target(5)  # not in window

    def test_fingerprint_matches_live_walk(self):
        from repro.serving.state import LiveSession

        store, session = self.sessions()
        live = LiveSession(
            0, self.WS, self.MG, history=ConsumptionSequence(0, HISTORIES[0])
        )
        assert session.state_fingerprint() == live.state_fingerprint()
        for item in (2, 2, 0, 3, 1, 0):
            session.append(item)
            live.append(item)
            assert session.state_fingerprint() == live.state_fingerprint()
            assert session.candidates() == live.candidates()

    def test_validation(self):
        store = ArenaHistoryStore.from_histories(HISTORIES)
        with pytest.raises(DataError):
            StoreSession(store, 0, 0)
        with pytest.raises(DataError):
            StoreSession(store, 0, 4, min_gap=-1)
        with pytest.raises(DataError):
            StoreSession(store, -1, 4)


class TestMemoryAccounting:
    def test_deep_sizeof_deduplicates(self):
        shared = list(range(100))
        assert deep_sizeof([shared, shared]) < 2 * deep_sizeof([shared])

    def test_views_cost_wrapper_not_buffer(self):
        buffer = np.zeros(100_000, dtype=np.int64)
        owned = deep_sizeof([buffer.copy() for _ in range(4)])
        borrowed = deep_sizeof([buffer[:] for _ in range(4)])
        # Four views chase the one shared base buffer, counted once.
        assert borrowed < owned / 3

    def test_profile_shape(self):
        store = ArenaHistoryStore.from_histories(HISTORIES)
        profile = store_memory_profile(store, store.users())
        assert profile["active_users"] == 3.0
        assert profile["resident_bytes"] > 0
        assert profile["bytes_per_user"] == pytest.approx(
            profile["resident_bytes"] / 3
        )

    def test_arena_beats_dict_on_long_histories(self):
        # Ids above the small-int cache, so the dict store pays the real
        # boxed-int cost a production vocabulary pays.
        histories = [[1000 + i % 50 for i in range(400)] for _ in range(64)]
        arena = ArenaHistoryStore.from_histories(histories)
        dense = DictHistoryStore.from_histories(histories)
        assert deep_sizeof(dense) > 4 * deep_sizeof(arena)
