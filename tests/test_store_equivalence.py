"""Cross-representation equivalence of the history stores.

The arena is only allowed to exist because it is *bit-identical* to the
representations it replaces. This suite proves it three ways:

* a hypothesis property drives a dict-backed and an arena-backed
  :class:`~repro.store.session.StoreSession` (plus a ``LiveSession``
  oracle) through random interleaved append/evict/rehydrate schedules
  and asserts element- and fingerprint-identity after every step;
* the serving path answers identically under every ``--store`` kind,
  for TS-PPR, PPR, FPMC, and Recency;
* the offline evaluation protocol produces the same MaAP/MiAP whether
  it walks split sequences or arena views, sequentially or forked.

Plus the satellite regression: LRU eviction + rehydration over a store
is a zero-copy re-seed — no history re-fetch, no WAL re-replay, no
memory growth.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

settings.register_profile(
    "repro-store",
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro-store")

from conftest import SMALL_WINDOW

from repro.config import EvaluationConfig, TSPPRConfig
from repro.data.sequence import ConsumptionSequence
from repro.data.split import SplitDataset
from repro.evaluation.protocol import evaluate_recommender
from repro.models.fpmc import FPMCRecommender
from repro.models.ppr import PPRRecommender
from repro.models.recency import RecencyRecommender
from repro.models.tsppr import TSPPRRecommender
from repro.serving.service import ServiceConfig, service_for_split
from repro.serving.state import LiveSession, SessionStore
from repro.store import deep_sizeof, make_history_store

QUICK = TSPPRConfig(max_epochs=3000, seed=3)
K = 10

# Small alphabets force repetition; RRC only exists under repetition.
histories_strategy = st.lists(
    st.integers(min_value=0, max_value=7), min_size=0, max_size=40
)
#: One schedule step: an item to append, or None = evict + rehydrate.
schedule_strategy = st.lists(
    st.one_of(st.none(), st.integers(min_value=0, max_value=7)),
    min_size=1,
    max_size=30,
)


class TestStoreSessionProperty:
    @given(
        history=histories_strategy,
        schedule=schedule_strategy,
        window_size=st.integers(min_value=1, max_value=6),
        min_gap=st.integers(min_value=0, max_value=3),
    )
    def test_dict_arena_live_identical_under_interleaving(
        self, history, schedule, window_size, min_gap
    ):
        stores = {
            kind: make_history_store([history], kind)
            for kind in ("dict", "arena")
        }
        sessions = {
            kind: store.session(0, window_size, min_gap)
            for kind, store in stores.items()
        }
        oracle = LiveSession(
            0,
            window_size,
            min_gap,
            history=ConsumptionSequence(0, history),
        )
        probe_items = range(8)
        for step in schedule:
            if step is None:
                # Evict + rehydrate: the session object dies, the store
                # keeps the history; a rebuilt session must be
                # indistinguishable. (The oracle keeps its state — that
                # is the bar rehydration has to clear.)
                sessions = {
                    kind: store.session(0, window_size, min_gap)
                    for kind, store in stores.items()
                }
            else:
                oracle.append(step)
                for session in sessions.values():
                    session.append(step)
            reference = sessions["dict"]
            for session in sessions.values():
                assert session.t == oracle.t
                assert session.state_fingerprint() == (
                    oracle.state_fingerprint()
                )
                assert session.candidates() == oracle.candidates()
                assert (
                    session.sequence().items.tolist()
                    == oracle.sequence().items.tolist()
                )
                assert session.last_positions(probe_items).tolist() == (
                    oracle.last_positions(probe_items).tolist()
                )
                for item in probe_items:
                    assert session.is_next_target(item) == (
                        oracle.is_next_target(item)
                    )
                assert session.n_live_events == reference.n_live_events

    @given(history=histories_strategy, extra=schedule_strategy)
    def test_store_fingerprints_agree_across_kinds(self, history, extra):
        stores = {
            kind: make_history_store([history], kind)
            for kind in ("dict", "arena")
        }
        for step in extra:
            if step is None:
                continue
            for store in stores.values():
                store.append(0, step)
        digests = {
            kind: store.fingerprint(0, 5, 2)
            for kind, store in stores.items()
        }
        assert len(set(digests.values())) == 1


def served_answers(model, split, users, store, store_dir=None):
    """Step each user's test suffix through a service; collect answers."""
    config = ServiceConfig(
        window=SMALL_WINDOW, default_k=K, n_items=split.n_items
    )
    answers = {user: [] for user in users}
    fingerprints = {}
    with service_for_split(
        model, split, config=config, store=store, store_dir=store_dir
    ) as service:
        for user in users:
            suffix = split.full_sequence(user).items[
                split.train_boundary(user):
            ].tolist()
            for item in suffix:
                result = service.step(user, item, k=K)
                if result is not None:
                    answers[user].append(result.items)
            fingerprints[user] = service.state_fingerprint(user)
    return answers, fingerprints


class TestServingStoreEquivalence:
    USERS = (0, 1, 2, 3)

    def assert_all_stores_agree(self, model, split, tmp_path):
        reference = None
        for store in ("callable", "dict", "arena", "arena-mmap"):
            got = served_answers(
                model,
                split,
                self.USERS,
                store,
                store_dir=(
                    str(tmp_path / "arena") if store == "arena-mmap" else None
                ),
            )
            if reference is None:
                reference = got
                assert any(got[0].values()), "no queries were answered"
            else:
                assert got == reference, f"store {store!r} diverges"

    def test_recency(self, gowalla_split: SplitDataset, tmp_path) -> None:
        model = RecencyRecommender().fit(gowalla_split, SMALL_WINDOW)
        self.assert_all_stores_agree(model, gowalla_split, tmp_path)

    def test_tsppr(self, gowalla_split: SplitDataset, tmp_path) -> None:
        model = TSPPRRecommender(QUICK).fit(gowalla_split, SMALL_WINDOW)
        self.assert_all_stores_agree(model, gowalla_split, tmp_path)

    def test_ppr(self, gowalla_split: SplitDataset, tmp_path) -> None:
        model = PPRRecommender(QUICK).fit(gowalla_split, SMALL_WINDOW)
        self.assert_all_stores_agree(model, gowalla_split, tmp_path)

    def test_fpmc(self, gowalla_split: SplitDataset, tmp_path) -> None:
        model = FPMCRecommender(QUICK).fit(gowalla_split, SMALL_WINDOW)
        self.assert_all_stores_agree(model, gowalla_split, tmp_path)


class TestEvaluationStoreEquivalence:
    def test_maap_miap_identical_over_store(
        self, fitted_tsppr, gowalla_split: SplitDataset
    ) -> None:
        config = EvaluationConfig()
        reference = evaluate_recommender(fitted_tsppr, gowalla_split, config)
        for kind in ("dict", "arena"):
            store = gowalla_split.history_store(kind=kind, base="full")
            result = evaluate_recommender(
                fitted_tsppr, gowalla_split, config, history_store=store
            )
            assert result == reference

    def test_parallel_walk_over_store_identical(
        self, fitted_tsppr, gowalla_split: SplitDataset
    ) -> None:
        config = EvaluationConfig()
        store = gowalla_split.history_store(kind="arena", base="full")
        sequential = evaluate_recommender(
            fitted_tsppr, gowalla_split, config, history_store=store
        )
        forked = evaluate_recommender(
            fitted_tsppr,
            gowalla_split,
            config,
            history_store=store,
            workers=2,
        )
        assert forked == sequential


class TestEvictionRehydration:
    """Satellite fix: rehydration over a store is a view, not a copy."""

    def store_pair(self, split: SplitDataset, capacity: int = 1):
        provider = split.history_store(kind="arena", base="train")
        store = SessionStore(
            SMALL_WINDOW.window_size,
            SMALL_WINDOW.min_gap,
            capacity=capacity,
            history_provider=provider,
        )
        return provider, store

    def test_rehydrated_base_session_is_zero_copy(
        self, gowalla_split: SplitDataset
    ) -> None:
        provider, store = self.store_pair(gowalla_split)
        first = store.get(0)
        digest = first.state_fingerprint()
        store.get(1)  # capacity=1 → evicts user 0
        rebuilt = store.get(0)
        assert rebuilt is not first
        assert rebuilt.state_fingerprint() == digest
        # The base history was never copied: the rebuilt session's view
        # borrows the arena column directly.
        assert np.shares_memory(
            rebuilt.sequence().items, provider.arena.items
        )

    def test_rehydration_does_not_replay_wal_tail(
        self, gowalla_split: SplitDataset
    ) -> None:
        provider = gowalla_split.history_store(kind="arena", base="train")
        calls = []

        def event_source(user: int):
            calls.append(user)
            return [1, 2, 3] if user == 0 else []

        store = SessionStore(
            SMALL_WINDOW.window_size,
            SMALL_WINDOW.min_gap,
            capacity=1,
            history_provider=provider,
            event_source=event_source,
        )
        first = store.get(0)
        assert first.n_live_events == 3  # cold build replays the log
        digest = first.state_fingerprint()
        replays_after_cold = len(calls)
        for other in (1, 2, 3):
            store.get(other)  # each evicts user 0 again
            rebuilt = store.get(0)
            assert rebuilt.state_fingerprint() == digest
            assert rebuilt.n_live_events == 3
        # The store kept the live tail, so every rehydration replayed a
        # zero-length log suffix — but never re-applied the events.
        assert store.counters.rehydrations >= 4

    def test_eviction_cycles_do_not_grow_memory(
        self, gowalla_split: SplitDataset
    ) -> None:
        provider, store = self.store_pair(gowalla_split)
        users = list(range(min(8, gowalla_split.n_users)))
        for user in users:
            store.get(user).append(5)

        def settled_size() -> int:
            # One walk over both, so objects shared between the provider
            # and the resident session are counted exactly once.
            return deep_sizeof((provider, store))

        # Warm every fused-view cache once (the first sequence() call
        # per user fuses base + tail lazily) and let the LRU dict settle
        # its internal table through a few churn cycles, then baseline.
        views = {user: store.get(user).sequence() for user in users}
        for _ in range(3):
            for user in users:
                store.get(user)
        baseline = settled_size()
        for _ in range(50):
            for user in users:
                # capacity=1 → every get is a rehydration, and every
                # rehydration hands back the *same* cached fused view —
                # nothing is re-fetched or re-copied.
                assert store.get(user).sequence() is views[user]
        # Reachable memory is exactly flat; the old copy-per-rehydration
        # path allocated a fresh history copy on every cycle.
        assert settled_size() == baseline

    def test_eviction_cycles_do_not_grow_rss(
        self, gowalla_split: SplitDataset
    ) -> None:
        import resource

        provider, store = self.store_pair(gowalla_split)
        users = list(range(min(8, gowalla_split.n_users)))
        for _ in range(5):  # warm allocator pools and caches
            for user in users:
                store.get(user)
        before = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        for _ in range(300):
            for user in users:
                store.get(user)
        after = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # ru_maxrss is in KiB on Linux; the old copy-per-rehydration
        # path grew by the base-history size every cycle.
        assert after - before < 16 * 1024
