"""The serving-tail regression checker: exit codes and baseline updates.

``benchmarks/check_serving_regression.py`` gates CI, so its failure
modes are part of the contract: exit 2 means the *fresh* measurement is
unusable (the bench didn't run or its schema drifted — fix the bench),
exit 1 means a real regression against the committed baseline, and a
missing/unusable *baseline* passes with a message (the first run that
records a metric cannot regress). ``--update-baseline`` normalizes the
fresh file in place and exits 0.
"""

from __future__ import annotations

import importlib.util
import json
import subprocess
import sys
from pathlib import Path

import pytest

_CHECKER = (
    Path(__file__).resolve().parent.parent
    / "benchmarks"
    / "check_serving_regression.py"
)


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_serving_regression", _CHECKER
    )
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    spec.loader.exec_module(module)
    return module


checker = _load_checker()


def _bench_payload(p99_ms: float) -> dict:
    return {
        "results": {
            checker.METRIC_KEY: {checker.FIELD: p99_ms, "p50_ms": 1.0}
        }
    }


@pytest.fixture()
def bench_repo(tmp_path):
    """A tiny git repo with a committed baseline bench file."""
    (tmp_path / "benchmarks").mkdir()
    bench_file = tmp_path / "benchmarks" / "BENCH_serving.json"
    bench_file.write_text(json.dumps(_bench_payload(10.0)))
    env_args = dict(cwd=tmp_path, check=True, capture_output=True)
    subprocess.run(["git", "init", "-q"], **env_args)
    subprocess.run(["git", "add", "-A"], **env_args)
    subprocess.run(
        ["git", "-c", "user.email=t@t", "-c", "user.name=t",
         "commit", "-q", "-m", "baseline"],
        **env_args,
    )
    return bench_file


class TestFreshFileProblems:
    """Exit 2: the bench did not run or produced garbage."""

    def test_missing_fresh_file(self, tmp_path, capsys) -> None:
        missing = tmp_path / "BENCH_serving.json"
        assert checker.main(["--bench-file", str(missing)]) == 2
        err = capsys.readouterr().err
        assert "missing" in err
        assert "run the serving bench" in err

    def test_malformed_fresh_file(self, tmp_path, capsys) -> None:
        bench = tmp_path / "BENCH_serving.json"
        bench.write_text("{torn mid-write")
        assert checker.main(["--bench-file", str(bench)]) == 2
        assert "not readable JSON" in capsys.readouterr().err

    def test_non_object_fresh_file(self, tmp_path, capsys) -> None:
        bench = tmp_path / "BENCH_serving.json"
        bench.write_text("[1, 2]")
        assert checker.main(["--bench-file", str(bench)]) == 2
        assert "expected an object" in capsys.readouterr().err

    def test_schema_mismatch_fresh_file(self, tmp_path, capsys) -> None:
        bench = tmp_path / "BENCH_serving.json"
        bench.write_text(json.dumps({"results": {"other_metric": {}}}))
        assert checker.main(["--bench-file", str(bench)]) == 2
        assert "schema mismatch" in capsys.readouterr().err


class TestBaselineProblems:
    """Exit 0 with a message: nothing to regress against."""

    def test_no_committed_baseline_passes(self, tmp_path, capsys) -> None:
        (tmp_path / "benchmarks").mkdir()
        bench = tmp_path / "benchmarks" / "BENCH_serving.json"
        bench.write_text(json.dumps(_bench_payload(5.0)))
        assert checker.main(["--bench-file", str(bench)]) == 0
        out = capsys.readouterr().out
        assert "no committed" in out
        assert "passing" in out

    def test_baseline_schema_mismatch_passes(self, bench_repo, capsys) -> None:
        # Rewrite history so the committed copy lacks the metric.
        bench_repo.write_text(json.dumps({"results": {}}))
        subprocess.run(
            ["git", "-c", "user.email=t@t", "-c", "user.name=t",
             "commit", "-aqm", "drop metric"],
            cwd=bench_repo.parent.parent, check=True, capture_output=True,
        )
        bench_repo.write_text(json.dumps(_bench_payload(5.0)))
        assert checker.main(["--bench-file", str(bench_repo)]) == 0
        assert "schema mismatch" in capsys.readouterr().out


class TestVerdicts:
    def test_within_tolerance_passes(self, bench_repo, capsys) -> None:
        bench_repo.write_text(json.dumps(_bench_payload(11.0)))
        assert checker.main(["--bench-file", str(bench_repo)]) == 0
        assert "[ok]" in capsys.readouterr().out

    def test_regression_fails_with_accept_hint(
        self, bench_repo, capsys
    ) -> None:
        bench_repo.write_text(json.dumps(_bench_payload(25.0)))
        assert checker.main(["--bench-file", str(bench_repo)]) == 1
        captured = capsys.readouterr()
        assert "[REGRESSION]" in captured.out
        assert "25.000" in captured.out and "10.000" in captured.out
        assert "--update-baseline" in captured.err

    def test_tolerance_is_configurable(self, bench_repo, capsys) -> None:
        bench_repo.write_text(json.dumps(_bench_payload(25.0)))
        code = checker.main(
            ["--bench-file", str(bench_repo), "--tolerance", "3.0"]
        )
        assert code == 0
        assert "[ok]" in capsys.readouterr().out


class TestUpdateBaseline:
    def test_normalizes_in_place_and_exits_zero(
        self, tmp_path, capsys
    ) -> None:
        bench = tmp_path / "BENCH_serving.json"
        payload = {"results": {checker.METRIC_KEY: {checker.FIELD: 7.5}}}
        bench.write_text(json.dumps(payload))  # compact, unsorted
        code = checker.main(
            ["--bench-file", str(bench), "--update-baseline"]
        )
        assert code == 0
        assert "baseline updated" in capsys.readouterr().out
        text = bench.read_text()
        assert json.loads(text) == payload
        assert text == json.dumps(payload, indent=2, sort_keys=True) + "\n"

    def test_update_requires_usable_fresh_file(
        self, tmp_path, capsys
    ) -> None:
        bench = tmp_path / "BENCH_serving.json"
        bench.write_text(json.dumps({"results": {}}))
        code = checker.main(
            ["--bench-file", str(bench), "--update-baseline"]
        )
        assert code == 2


def test_checker_runs_as_a_script(bench_repo) -> None:
    """The CI entry point (python benchmarks/...) works end to end."""
    bench_repo.write_text(json.dumps(_bench_payload(10.5)))
    done = subprocess.run(
        [sys.executable, str(_CHECKER), "--bench-file", str(bench_repo)],
        capture_output=True, text=True,
    )
    assert done.returncode == 0, done.stderr
    assert "[ok]" in done.stdout
