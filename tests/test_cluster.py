"""Sharded-cluster integration: routing, aggregation, restart, drain.

Real worker *processes* (forked), a real supervisor, a real router —
these tests exercise the same stack ``repro-serve cluster`` runs, just
at 2–3 shards on a tiny synthetic split. The heavyweight chaos sweep
(4 shards under sustained load) lives in ``test_cluster_chaos.py``
behind the ``chaos`` marker.
"""

from __future__ import annotations

import time

import pytest

from conftest import SMALL_WINDOW

from repro.cluster import (
    ClusterRouter,
    RUNNING,
    STOPPED,
    ShardSupervisor,
)
from repro.data.split import SplitDataset
from repro.exceptions import ServingError, ServingUnavailableError
from repro.models.recency import RecencyRecommender
from repro.serving import ServiceConfig, ServingClient, service_for_split
from repro.store import SessionArena

#: Every user of the conftest gowalla split (it has 6).
USERS = list(range(6))


def cluster_config(split: SplitDataset) -> ServiceConfig:
    return ServiceConfig(window=SMALL_WINDOW, n_items=split.n_items)


def make_supervisor(
    split: SplitDataset, tmp_path, n_shards: int, **overrides
) -> ShardSupervisor:
    model = RecencyRecommender().fit(split, SMALL_WINDOW)
    options = dict(
        heartbeat_interval_s=0.1,
        heartbeat_timeout_s=0.5,
        max_missed_heartbeats=3,
    )
    options.update(overrides)
    return ShardSupervisor(
        split,
        model,
        cluster_config(split),
        n_shards=n_shards,
        run_dir=tmp_path / "cluster",
        **options,
    )


def stream_for(split: SplitDataset, users) -> list:
    """A few held-out events per user, interleaved across users."""
    events = []
    for step in range(3):
        for user in users:
            items = split.full_sequence(user).items
            boundary = split.train_boundary(user)
            if boundary + step < len(items):
                events.append((user, int(items[boundary + step])))
    return events


def wait_for_state(supervisor, shard, state, timeout=60.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if supervisor.states()[shard] == state:
            return
        time.sleep(0.05)
    raise AssertionError(
        f"{shard} never reached {state}: {supervisor.states()}"
    )


@pytest.fixture()
def cluster(gowalla_split: SplitDataset, tmp_path):
    """A running 2-shard cluster behind a router, plus a client."""
    supervisor = make_supervisor(gowalla_split, tmp_path, n_shards=2)
    supervisor.start()
    router = ClusterRouter(
        supervisor, port=0, event_retry_deadline_s=90.0
    ).start()
    try:
        yield supervisor, router, ServingClient(router.url, timeout=30.0)
    finally:
        router.close()
        supervisor.close()


class TestRouting:
    def test_cluster_matches_single_node_reference(
        self, gowalla_split: SplitDataset, tmp_path, cluster
    ) -> None:
        """Sharding must not change a single answer.

        The same event stream through the cluster and through one
        single-node service must yield identical recommendations for
        every user — per-user state only depends on that user's events,
        and routing pins each user to one shard.
        """
        supervisor, router, client = cluster
        stream = stream_for(gowalla_split, USERS)
        for user, item in stream:
            client.ingest(user, item)
        model = RecencyRecommender().fit(gowalla_split, SMALL_WINDOW)
        with service_for_split(
            model, gowalla_split, config=cluster_config(gowalla_split)
        ) as reference:
            for user, item in stream:
                reference.ingest(user, item)
            for user in USERS:
                expected = reference.recommend(user, k=8).items
                assert client.recommend_items(user, k=8) == expected

    def test_requests_land_on_the_owning_shard(self, cluster) -> None:
        supervisor, router, client = cluster
        for user in USERS:
            reply = client.recommend(user, k=3)
            assert reply["shard"] == supervisor.ring.owner(user)

    def test_state_forwarding(self, cluster) -> None:
        supervisor, router, client = cluster
        client.ingest(0, 1)
        state = client.state(0)
        assert state["live_events"] == 1
        assert state["shard"] == supervisor.ring.owner(0)

    def test_ring_route_exposes_topology(self, cluster) -> None:
        supervisor, router, client = cluster
        ring = client._request("/ring")
        assert ring["shards"] == list(supervisor.ring.shards)
        assert ring["vnodes"] == supervisor.ring.vnodes
        assert all(ring["states"][s] == RUNNING for s in ring["shards"])
        assert all(ring["endpoints"][s] for s in ring["shards"])

    def test_healthz_reports_shard_states(self, cluster) -> None:
        supervisor, router, client = cluster
        health = client._request("/healthz")
        assert health["status"] == "ok"
        assert health["running"] == 2


class TestMergedMetrics:
    def test_merge_is_exact_across_shards(
        self, gowalla_split: SplitDataset, cluster
    ) -> None:
        """Router counters == sums of per-shard counters, exactly."""
        supervisor, router, client = cluster
        stream = stream_for(gowalla_split, USERS)
        for user, item in stream:
            client.ingest(user, item)
        for user in USERS:
            client.recommend(user, k=5)
        merged = client.metrics()
        per_shard = [
            ServingClient(supervisor.url_of(name)).metrics()
            for name in supervisor.shard_names()
        ]
        for counter in ("events", "requests"):
            assert merged["counters"][counter] == sum(
                s["counters"][counter] for s in per_shard
            )
        assert merged["counters"]["events"] == len(stream)
        merged_n = merged["histogram_state"]["request_latency"]["n"]
        assert merged_n == sum(
            s["histogram_state"]["request_latency"]["n"] for s in per_shard
        )
        assert merged["router"]["shards_reporting"] == 2
        assert merged["router"]["counters"]["router_events"] == len(stream)


class TestRestart:
    def test_kill_restart_replay_readmit(
        self, gowalla_split: SplitDataset, cluster
    ) -> None:
        """The acceptance path: crash → WAL replay → fingerprint → ring."""
        supervisor, router, client = cluster
        stream = stream_for(gowalla_split, USERS)
        for user, item in stream:
            client.ingest(user, item)
        victim = supervisor.ring.owner(USERS[0])
        victims_users = [
            u for u in USERS if supervisor.ring.owner(u) == victim
        ]
        pre = {u: client.state(u)["fingerprint"] for u in victims_users}
        old_pid = supervisor.kill_shard(victim)

        # While the shard restarts, its users still get answers —
        # degraded base-history Recency, flagged as such.
        degraded_seen = False
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            reply = client.recommend(victims_users[0], k=5)
            if reply["degraded"]:
                degraded_seen = True
                break
            time.sleep(0.02)
        assert degraded_seen, "outage produced no degraded answer"

        wait_for_state(supervisor, victim, RUNNING)
        assert supervisor.restart_counts()[victim] == 1
        assert supervisor.pid_of(victim) != old_pid
        # Bit-identical rehydration, observed end-to-end through the
        # router: same fingerprints as before the kill.
        post = {u: client.state(u)["fingerprint"] for u in victims_users}
        assert post == pre
        # And the stream continues: appends and live answers work.
        assert client.recommend(victims_users[0], k=5)["degraded"] is False
        client.ingest(victims_users[0], 1)
        assert (
            client.state(victims_users[0])["live_events"]
            == len([1 for u, _ in stream if u == victims_users[0]]) + 1
        )

    def test_expected_fingerprints_are_readonly(
        self, gowalla_split: SplitDataset, cluster
    ) -> None:
        """Supervisor-side replay must not disturb the live shard."""
        supervisor, router, client = cluster
        client.ingest(0, 1)
        client.ingest(0, 2)
        shard = supervisor.ring.owner(0)
        expected = supervisor.expected_fingerprints(shard)
        assert expected[0] == client.state(0)["fingerprint"]
        # The live worker kept serving throughout.
        assert client.state(0)["live_events"] == 2

    def test_hung_shard_is_detected_and_recycled(
        self, gowalla_split: SplitDataset, tmp_path
    ) -> None:
        """A hang (no crash!) must also trip heartbeats and restart."""
        supervisor = make_supervisor(
            gowalla_split,
            tmp_path,
            n_shards=2,
            heartbeat_timeout_s=0.3,
            max_missed_heartbeats=2,
        )
        supervisor.start()
        try:
            from repro.resilience.faults import ProcessFaultInjector

            victim = supervisor.ring.owner(0)
            injector = ProcessFaultInjector()
            injector.hang(supervisor.url_of(victim), seconds=30.0)
            assert injector.hangs  # the fault landed
            deadline = time.monotonic() + 90.0
            while time.monotonic() < deadline:
                if supervisor.restart_counts()[victim] == 1:
                    break
                time.sleep(0.05)
            assert supervisor.restart_counts()[victim] == 1
            wait_for_state(supervisor, victim, RUNNING, timeout=90.0)
            assert ServingClient(supervisor.url_of(victim)).health()
        finally:
            supervisor.close()


class TestDrain:
    def test_drain_migrates_users_bit_identically(
        self, gowalla_split: SplitDataset, tmp_path
    ) -> None:
        supervisor = make_supervisor(gowalla_split, tmp_path, n_shards=3)
        supervisor.start()
        try:
            router = ClusterRouter(supervisor, port=0).start()
            client = ServingClient(router.url, timeout=30.0)
            stream = stream_for(gowalla_split, USERS)
            for user, item in stream:
                client.ingest(user, item)
            retiree = supervisor.ring.owner(USERS[0])
            moving = [u for u in USERS if supervisor.ring.owner(u) == retiree]
            staying = [u for u in USERS if u not in moving]
            pre = {u: client.state(u)["fingerprint"] for u in USERS}

            report = supervisor.drain(retiree)

            assert report["drained"] == retiree
            assert set(report["migrated_users"]) == set(moving)
            assert retiree not in supervisor.ring
            assert supervisor.states()[retiree] == STOPPED
            # Every user — migrated or not — fingerprints identically
            # and keeps taking writes through the router.
            for user in USERS:
                assert client.state(user)["fingerprint"] == pre[user]
                client.ingest(user, 1)
            for user in moving:
                assert client.state(user)["shard"] != retiree
            for user in staying:
                # Consistent hashing: survivors' users never moved.
                assert client.state(user)["shard"] == supervisor.ring.owner(
                    user
                )
            router.close()
        finally:
            supervisor.close()

    def test_cannot_drain_the_last_shard(
        self, gowalla_split: SplitDataset, tmp_path
    ) -> None:
        supervisor = make_supervisor(gowalla_split, tmp_path, n_shards=1)
        supervisor.start()
        try:
            with pytest.raises(ServingError, match="last shard"):
                supervisor.drain("shard-0")
        finally:
            supervisor.close()


class TestValidation:
    def test_supervisor_rejects_bad_shapes(
        self, gowalla_split: SplitDataset, tmp_path
    ) -> None:
        model = RecencyRecommender().fit(gowalla_split, SMALL_WINDOW)
        with pytest.raises(ServingError, match="n_shards"):
            ShardSupervisor(
                gowalla_split,
                model,
                cluster_config(gowalla_split),
                n_shards=0,
                run_dir=tmp_path,
            )
        supervisor = make_supervisor(gowalla_split, tmp_path, n_shards=1)
        with pytest.raises(ServingError, match="unknown shard"):
            supervisor.pid_of("shard-99")
        with pytest.raises(ServingError, match="no live process"):
            supervisor.pid_of("shard-0")  # never started

    def test_router_503_without_seq_during_outage(
        self, gowalla_split: SplitDataset, cluster
    ) -> None:
        """No idempotency seq → no blind retry → typed 503, fast."""
        supervisor, router, client = cluster
        victim = supervisor.ring.owner(0)
        supervisor.kill_shard(victim)
        raw = ServingClient(router.url, timeout=10.0, track_seq=False)
        try:
            with pytest.raises(ServingError, match="idempotency seq"):
                # The kill already landed; the very next forward fails
                # and, with no seq to retry on, surfaces immediately.
                for _ in range(200):
                    raw.ingest(0, 1)
        finally:
            # Leave the fixture healthy for teardown.
            wait_for_state(supervisor, victim, RUNNING)


class TestSharedArena:
    def test_shards_share_one_mmap_arena(
        self, gowalla_split: SplitDataset, tmp_path
    ) -> None:
        """``store="arena-mmap"`` packs the columns once for all shards.

        The supervisor saves the arena under the run dir before any
        worker forks; every shard opens the same files read-only. The
        served fingerprints must still match
        ``expected_fingerprints`` — which deliberately replays over the
        legacy callable provider — so agreement here is a live
        cross-representation identity proof through real processes.
        """
        supervisor = make_supervisor(
            gowalla_split, tmp_path, n_shards=2, store="arena-mmap"
        )
        shared = tmp_path / "cluster" / "arena"
        assert SessionArena.exists(str(shared))
        specs = [supervisor._handle(n).spec for n in supervisor.shard_names()]
        assert all(spec.store == "arena-mmap" for spec in specs)
        assert len({spec.store_dir for spec in specs}) == 1
        supervisor.start()
        router = ClusterRouter(supervisor, port=0).start()
        try:
            client = ServingClient(router.url, timeout=30.0)
            for user, item in stream_for(gowalla_split, USERS):
                client.ingest(user, item)
            for user in USERS:
                assert client.recommend_items(user, k=5)
                shard = supervisor.ring.owner(user)
                expected = supervisor.expected_fingerprints(shard, [user])
                assert client.state(user)["fingerprint"] == expected[user]
        finally:
            router.close()
            supervisor.close()
