"""Tests for the experiment harness (registry, common, smoke runs)."""

import pytest

from repro.evaluation.metrics import AccuracyResult
from repro.exceptions import ExperimentError
from repro.experiments.common import (
    BASELINE_ORDER,
    DATASET_KEYS,
    SMOKE_SCALE,
    ExperimentScale,
    accuracy_run,
    build_split,
    clear_caches,
    dataset_title,
    default_config,
    make_model,
    scale_by_name,
)
from repro.experiments.registry import (
    ExperimentResult,
    available_experiments,
    get_experiment,
    run_experiment,
)

ALL_EXPERIMENT_IDS = (
    "table2", "table3", "table4", "table5",
    "fig4", "fig5", "fig6", "fig7", "fig8",
    "fig9", "fig10", "fig11", "fig12", "fig13",
)


class TestScales:
    def test_scale_by_name(self):
        assert scale_by_name("smoke") is SMOKE_SCALE
        with pytest.raises(ExperimentError):
            scale_by_name("giant")

    def test_scale_validation(self):
        with pytest.raises(ExperimentError):
            ExperimentScale("bad", user_factor=0, length_factor=1, max_epochs=10)
        with pytest.raises(ExperimentError):
            ExperimentScale("bad", user_factor=1, length_factor=1, max_epochs=0)


class TestBuildSplit:
    def test_caches_by_key_and_scale(self):
        clear_caches()
        a = build_split("gowalla", SMOKE_SCALE)
        b = build_split("gowalla", SMOKE_SCALE)
        assert a is b

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ExperimentError, match="unknown dataset"):
            build_split("movielens", SMOKE_SCALE)

    def test_both_datasets_build(self):
        for key in DATASET_KEYS:
            split = build_split(key, SMOKE_SCALE)
            assert split.n_users >= 2

    def test_dataset_title(self):
        assert dataset_title("gowalla") == "Gowalla-like"
        assert dataset_title("lastfm") == "Lastfm-like"


class TestMakeModel:
    @pytest.mark.parametrize("name", BASELINE_ORDER)
    def test_all_methods_constructible(self, name):
        model = make_model(name, "gowalla", SMOKE_SCALE)
        assert model.name == name

    def test_unknown_model_rejected(self):
        with pytest.raises(ExperimentError, match="unknown model"):
            make_model("SVD++", "gowalla", SMOKE_SCALE)

    def test_default_config_uses_table4(self):
        gowalla = default_config("gowalla", SMOKE_SCALE)
        lastfm = default_config("lastfm", SMOKE_SCALE)
        assert gowalla.lambda_mapping == pytest.approx(0.01)
        assert lastfm.lambda_mapping == pytest.approx(0.001)
        assert gowalla.max_epochs == SMOKE_SCALE.max_epochs


class TestRegistry:
    def test_all_artifacts_registered(self):
        available = available_experiments()
        for experiment_id in ALL_EXPERIMENT_IDS:
            assert experiment_id in available

    def test_get_unknown_raises(self):
        with pytest.raises(ExperimentError, match="unknown experiment"):
            get_experiment("fig99")

    def test_titles_nonempty(self):
        for experiment_id in ALL_EXPERIMENT_IDS:
            title, runner = get_experiment(experiment_id)
            assert title
            assert callable(runner)

    def test_render_contains_sections(self):
        result = ExperimentResult(
            experiment_id="x", title="demo",
            rows=({"a": 1},), series={"s": ((1, 0.5),)}, notes=("hello",),
        )
        text = result.render()
        assert "== x: demo ==" in text
        assert "hello" in text
        assert "-- s --" in text


class TestSmokeRuns:
    """Cheap experiments run end-to-end at smoke scale."""

    def test_table2(self):
        result = run_experiment("table2", SMOKE_SCALE)
        assert len(result.rows) == 2
        assert result.rows[0]["Data Set"] == "Gowalla-like"

    def test_table4(self):
        result = run_experiment("table4", SMOKE_SCALE)
        assert result.rows[0]["K"] == 40

    def test_fig4(self):
        result = run_experiment("fig4", SMOKE_SCALE)
        assert len(result.series) == 8  # 2 datasets x 4 features
        for points in result.series.values():
            assert all(count >= 0 for _, count in points)

    def test_fig12(self):
        result = run_experiment("fig12", SMOKE_SCALE)
        assert len(result.series) == 2
        for points in result.series.values():
            updates = [n for n, _ in points]
            assert updates == sorted(updates)


class TestAccuracyRunCache:
    def test_shared_across_fig5_fig6_table3(self):
        clear_caches()
        first = accuracy_run("gowalla", SMOKE_SCALE, ("Random", "Pop"))
        second = accuracy_run("gowalla", SMOKE_SCALE, ("Random", "Pop"))
        assert first is second
        assert isinstance(first["Pop"], AccuracyResult)
