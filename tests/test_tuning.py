"""Tests for repro.tuning.grid."""

import pytest

from repro.config import TSPPRConfig
from repro.exceptions import ExperimentError
from repro.tuning.grid import GridSearch, expand_grid

SMOKE = TSPPRConfig(max_epochs=3000, seed=2)


class TestExpandGrid:
    def test_cartesian_product(self):
        points = list(expand_grid({"a": [1, 2], "b": ["x"]}))
        assert points == [{"a": 1, "b": "x"}, {"a": 2, "b": "x"}]

    def test_deterministic_key_order(self):
        first = list(expand_grid({"b": [1, 2], "a": [3]}))
        second = list(expand_grid({"a": [3], "b": [1, 2]}))
        assert first == second

    def test_empty_grid_rejected(self):
        with pytest.raises(ExperimentError):
            list(expand_grid({}))

    def test_empty_axis_rejected(self):
        with pytest.raises(ExperimentError):
            list(expand_grid({"a": []}))


class TestGridSearch:
    def test_unknown_axis_rejected(self):
        with pytest.raises(ExperimentError, match="unknown grid axis"):
            GridSearch({"bogus_param": [1]})

    def test_bad_metric_rejected(self):
        with pytest.raises(ExperimentError, match="metric"):
            GridSearch({"n_factors": [5]}, metric="precision")

    def test_best_before_fit_raises(self):
        search = GridSearch({"n_factors": [5]})
        with pytest.raises(ExperimentError):
            search.best

    def test_searches_config_axis(self, gowalla_split):
        search = GridSearch(
            {"n_factors": [4, 16]},
            base_config=SMOKE,
            top_n=10,
        ).fit(gowalla_split)
        assert len(search.results) == 2
        assert search.results[0].score >= search.results[1].score
        assert search.best.parameters["n_factors"] in (4, 16)
        rows = search.as_rows()
        assert rows[0]["score"] == round(search.best.score, 4)

    def test_searches_window_axis(self, gowalla_split):
        search = GridSearch(
            {"min_gap": [5, 20]},
            base_config=SMOKE,
        ).fit(gowalla_split)
        assert len(search.results) == 2
        gaps = {point.parameters["min_gap"] for point in search.results}
        assert gaps == {5, 20}

    def test_custom_model_factory(self, gowalla_split):
        from repro.models.ppr import PPRRecommender

        search = GridSearch(
            {"n_factors": [4]},
            base_config=SMOKE,
            model_factory=PPRRecommender,
        ).fit(gowalla_split)
        assert len(search.results) == 1
