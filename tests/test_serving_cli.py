"""The serving CLI: parser wiring, replay end-to-end, mount points.

``serve`` blocks on a socket, so its end-to-end path is exercised via
the server tests; here we verify the argument surface (both the
standalone ``repro-serve`` parser and the subcommands mounted on
``repro-experiments``) and run ``replay`` for real against a log
produced by a live service.
"""

from __future__ import annotations

import pytest

import repro.cli as experiments_cli
from repro.config import WindowConfig
from repro.models.recency import RecencyRecommender
from repro.serving.cli import (
    DATASET_CHOICES,
    MODEL_CHOICES,
    SERVE_KNOB_ARGS,
    build_model,
    build_parser,
    build_split,
    main,
    resolve_knob_args,
)
from repro.serving.events import EventLog
from repro.serving.service import ServiceConfig, service_for_split
from repro.tuning.defaults import values_of


class TestParser:
    def test_serve_defaults(self) -> None:
        # Knob flags parse to None sentinels ("not explicitly set") so
        # profile values are only overridden by flags the user typed;
        # resolution then fills in the registry defaults.
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.model == "recency"
        assert args.dataset == "gowalla"
        assert args.port == 8423
        for name in SERVE_KNOB_ARGS:
            assert getattr(args, name) is None
        assert args.profile is None
        assert args.event_log is None
        assert args.deadline_ms is None
        resolved = resolve_knob_args(args, "serving", SERVE_KNOB_ARGS)
        values = values_of(resolved)
        assert values["capacity"] == 1024
        assert values["max_batch"] == 64
        assert values["batching"] == "inflight"
        assert values["check_interval"] == 16
        assert values["max_inflight_rows"] == 32768
        assert values["admission_wait_ms"] == 0.0
        assert values["store"] == "arena"
        assert all(entry.source == "default" for entry in resolved.values())

    def test_serve_overrides(self, tmp_path) -> None:
        args = build_parser().parse_args(
            [
                "--log-level", "debug",
                "serve",
                "--model", "tsppr",
                "--dataset", "lastfm",
                "--port", "0",
                "--event-log", str(tmp_path / "e.log"),
                "--max-batch", "8",
                "--max-wait-ms", "0.5",
                "--batching", "microbatch",
                "--check-interval", "4",
                "--max-inflight-rows", "512",
                "--admission-wait-ms", "1.5",
                "--deadline-ms", "25",
                "--capacity", "16",
                "--max-epochs", "100",
                "--seed", "11",
            ]
        )
        assert args.log_level == "debug"
        assert args.model == "tsppr"
        assert args.dataset == "lastfm"
        assert args.max_batch == 8
        assert args.batching == "microbatch"
        assert args.check_interval == 4
        assert args.max_inflight_rows == 512
        assert args.admission_wait_ms == 1.5
        assert args.deadline_ms == 25.0

    def test_replay_requires_event_log(self, capsys) -> None:
        with pytest.raises(SystemExit):
            build_parser().parse_args(["replay"])
        assert "--event-log" in capsys.readouterr().err

    def test_rejects_unknown_model(self, capsys) -> None:
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--model", "svd"])
        assert "invalid choice" in capsys.readouterr().err

    def test_bad_log_level_errors(self, tmp_path, capsys) -> None:
        with pytest.raises(SystemExit):
            main(
                ["--log-level", "shouty", "replay", "--event-log",
                 str(tmp_path / "none.log")]
            )

    def test_mounted_on_experiments_cli(self, tmp_path) -> None:
        """repro-experiments gained the same serve/replay subcommands."""
        parser = experiments_cli.build_parser()
        args = parser.parse_args(["serve", "--model", "pop", "--port", "0"])
        assert args.command == "serve"
        assert args.model == "pop"
        args = parser.parse_args(
            ["replay", "--event-log", str(tmp_path / "e.log")]
        )
        assert args.command == "replay"

    def test_choices_cover_bundled_models(self) -> None:
        assert set(MODEL_CHOICES) == {"recency", "pop", "tsppr", "ppr", "fpmc"}
        assert set(DATASET_CHOICES) == {"gowalla", "lastfm"}


class TestBuilders:
    def test_build_split_is_seeded(self) -> None:
        one = build_split("gowalla", seed=3)
        two = build_split("gowalla", seed=3)
        assert one.n_users == two.n_users
        assert one.n_items == two.n_items

    def test_build_model_baselines(self) -> None:
        split = build_split("gowalla", seed=3)
        assert build_model("recency", split, max_epochs=10, seed=1).is_fitted
        assert build_model("pop", split, max_epochs=10, seed=1).is_fitted


class TestReplayEndToEnd:
    def test_replay_reports_fingerprints(self, tmp_path, capsys) -> None:
        """replay prints exactly what a recovering server rebuilds."""
        seed = 7
        split = build_split("gowalla", seed)
        model = RecencyRecommender().fit(split)
        log = EventLog.open(tmp_path / "events.log")
        config = ServiceConfig(n_items=split.n_items)
        with service_for_split(
            model, split, event_log=log, config=config
        ) as service:
            for user in (0, 1):
                boundary = split.train_boundary(user)
                for item in split.full_sequence(user).items[
                    boundary:boundary + 10
                ].tolist():
                    service.ingest(user, item)
            expected = {u: service.state_fingerprint(u) for u in (0, 1)}
        code = main(
            ["--log-level", "warning", "replay",
             "--event-log", str(tmp_path / "events.log"), "--seed", str(seed)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "20 committed event(s), 2 user(s)" in out
        for user, fingerprint in expected.items():
            assert f"user {user}: replayed 10 event(s)" in out
            assert fingerprint in out

    def test_replay_single_user_filter(self, tmp_path, capsys) -> None:
        split = build_split("gowalla", 7)
        model = RecencyRecommender().fit(split)
        log = EventLog.open(tmp_path / "events.log")
        with service_for_split(
            model, split, event_log=log,
            config=ServiceConfig(n_items=split.n_items),
        ) as service:
            service.ingest(0, 1)
            service.ingest(1, 2)
        code = main(
            ["--log-level", "warning", "replay",
             "--event-log", str(tmp_path / "events.log"), "--user", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "user 1:" in out
        assert "user 0:" not in out

    def test_replay_missing_log_fails(self, tmp_path, capsys) -> None:
        code = main(
            ["--log-level", "warning", "replay",
             "--event-log", str(tmp_path / "missing.log")]
        )
        assert code == 1
        assert "not found" in capsys.readouterr().err

    def test_replay_does_not_mutate_log(self, tmp_path) -> None:
        """Inspection is read-only: same bytes before and after."""
        split = build_split("gowalla", 7)
        model = RecencyRecommender().fit(split)
        log_path = tmp_path / "events.log"
        log = EventLog.open(log_path)
        with service_for_split(
            model, split, event_log=log,
            config=ServiceConfig(n_items=split.n_items),
        ) as service:
            service.ingest(0, 1)
        before = log_path.read_bytes()
        main(["--log-level", "warning", "replay", "--event-log", str(log_path)])
        assert log_path.read_bytes() == before
