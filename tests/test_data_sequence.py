"""Tests for repro.data.sequence."""

import numpy as np
import pytest

from repro.data.sequence import ConsumptionSequence
from repro.exceptions import DataError


@pytest.fixture()
def sequence() -> ConsumptionSequence:
    #          t: 0  1  2  3  4  5
    return ConsumptionSequence(0, [7, 3, 7, 5, 3, 7])


class TestConstruction:
    def test_length_and_iteration(self, sequence):
        assert len(sequence) == 6
        assert list(sequence) == [7, 3, 7, 5, 3, 7]

    def test_items_are_read_only(self, sequence):
        with pytest.raises(ValueError):
            sequence.items[0] = 9

    def test_rejects_negative_user(self):
        with pytest.raises(DataError, match="user"):
            ConsumptionSequence(-1, [1])

    def test_rejects_negative_items(self):
        with pytest.raises(DataError, match="non-negative"):
            ConsumptionSequence(0, [1, -2])

    def test_rejects_2d_items(self):
        with pytest.raises(DataError, match="one-dimensional"):
            ConsumptionSequence(0, np.zeros((2, 2), dtype=int))

    def test_empty_sequence_allowed(self):
        assert len(ConsumptionSequence(0, [])) == 0

    def test_getitem(self, sequence):
        assert sequence[0] == 7
        assert sequence[-1] == 7
        assert list(sequence[1:3]) == [3, 7]

    def test_equality(self):
        assert ConsumptionSequence(0, [1, 2]) == ConsumptionSequence(0, [1, 2])
        assert ConsumptionSequence(0, [1, 2]) != ConsumptionSequence(1, [1, 2])
        assert ConsumptionSequence(0, [1, 2]) != ConsumptionSequence(0, [2, 1])


class TestDerivedViews:
    def test_distinct_items(self, sequence):
        assert sequence.distinct_items().tolist() == [3, 5, 7]

    def test_positions_of(self, sequence):
        assert sequence.positions_of(7) == [0, 2, 5]
        assert sequence.positions_of(3) == [1, 4]
        assert sequence.positions_of(99) == []

    @pytest.mark.parametrize(
        "item, t, expected",
        [
            (7, 0, -1),   # nothing before position 0
            (7, 1, 0),
            (7, 3, 2),
            (7, 6, 5),
            (3, 4, 1),
            (3, 5, 4),
            (5, 3, -1),
            (5, 4, 3),
            (99, 6, -1),
        ],
    )
    def test_last_position_before(self, sequence, item, t, expected):
        assert sequence.last_position_before(item, t) == expected

    def test_last_position_before_matches_naive(self, sequence):
        items = sequence.items.tolist()
        for t in range(len(items) + 1):
            for item in set(items):
                naive = max(
                    (p for p in range(t) if items[p] == item), default=-1
                )
                assert sequence.last_position_before(item, t) == naive

    @pytest.mark.parametrize(
        "item, t, expected",
        [(7, 0, 0), (7, 3, 2), (7, 6, 3), (3, 5, 2), (5, 6, 1), (99, 6, 0)],
    )
    def test_count_before(self, sequence, item, t, expected):
        assert sequence.count_before(item, t) == expected


class TestSlicing:
    def test_prefix(self, sequence):
        prefix = sequence.prefix(3)
        assert list(prefix) == [7, 3, 7]
        assert prefix.user == sequence.user

    def test_prefix_longer_than_sequence(self, sequence):
        assert len(sequence.prefix(100)) == 6

    def test_prefix_rejects_negative(self, sequence):
        with pytest.raises(DataError):
            sequence.prefix(-1)

    def test_suffix(self, sequence):
        assert list(sequence.suffix(4)) == [3, 7]

    def test_concat(self, sequence):
        other = ConsumptionSequence(0, [9, 9])
        combined = sequence.concat(other)
        assert list(combined) == [7, 3, 7, 5, 3, 7, 9, 9]

    def test_concat_rejects_other_user(self, sequence):
        with pytest.raises(DataError, match="users"):
            sequence.concat(ConsumptionSequence(1, [0]))

    def test_prefix_plus_suffix_reconstructs(self, sequence):
        for cut in range(len(sequence) + 1):
            rebuilt = sequence.prefix(cut).concat(sequence.suffix(cut))
            assert rebuilt == sequence
