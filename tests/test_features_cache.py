"""Tests for repro.features.cache."""

import numpy as np
import pytest

from repro.config import WindowConfig
from repro.exceptions import SamplingError
from repro.features.cache import QuadrupleFeatureCache
from repro.features.vectorizer import BehavioralFeatureModel
from repro.sampling.quadruples import sample_quadruples

WINDOW = WindowConfig(window_size=10, min_gap=2)


class TestValidation:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(SamplingError, match="same shape"):
            QuadrupleFeatureCache(np.zeros((3, 4)), np.zeros((2, 4)))

    def test_non_2d_rejected(self):
        with pytest.raises(SamplingError, match="2-D"):
            QuadrupleFeatureCache(np.zeros(3), np.zeros(3))

    def test_difference(self):
        cache = QuadrupleFeatureCache(
            np.array([[1.0, 2.0]]), np.array([[0.5, 1.0]])
        )
        assert np.allclose(cache.difference(0), [0.5, 1.0])
        assert np.allclose(cache.differences(), [[0.5, 1.0]])
        assert len(cache) == 1
        assert cache.n_features == 2


class TestBuild:
    def test_matches_direct_extraction(self):
        from repro.config import SplitConfig
        from repro.data.dataset import Dataset
        from repro.data.split import temporal_split

        dataset = Dataset.from_user_items(
            [[0, 1, 2, 3] * 6, [4, 5, 4, 6] * 6], name="cyclic"
        )
        split = temporal_split(
            dataset, SplitConfig(train_fraction=0.75, min_train_length=1)
        )
        model = BehavioralFeatureModel().fit(split.train_dataset(), WINDOW)
        quadruples = sample_quadruples(split, WINDOW, n_negatives=2, random_state=1)
        cache = QuadrupleFeatureCache.build(quadruples, split, model)
        assert len(cache) == len(quadruples)
        for index in range(len(quadruples)):
            user, positive, negative, t = quadruples.row(index)
            sequence = split.full_sequence(user)
            assert np.allclose(
                cache.positive[index], model.vector(sequence, positive, t)
            )
            assert np.allclose(
                cache.negative[index], model.vector(sequence, negative, t)
            )

    def test_build_bit_identical_to_reference(self, gowalla_split):
        # The session-walk build is a pure perf path: exact equality with
        # the seed's per-anchor extraction, not allclose.
        model = BehavioralFeatureModel().fit(gowalla_split.train_dataset(), WINDOW)
        quadruples = sample_quadruples(
            gowalla_split, WINDOW, n_negatives=3, random_state=5
        )
        fast = QuadrupleFeatureCache.build(quadruples, gowalla_split, model)
        reference = QuadrupleFeatureCache.build_reference(
            quadruples, gowalla_split, model
        )
        assert np.array_equal(fast.positive, reference.positive)
        assert np.array_equal(fast.negative, reference.negative)

    def test_build_workers_bit_identical(self, gowalla_split):
        # Users are sharded across forked workers but every row lands at
        # its global index, so worker count cannot change the arrays.
        model = BehavioralFeatureModel().fit(gowalla_split.train_dataset(), WINDOW)
        quadruples = sample_quadruples(
            gowalla_split, WINDOW, n_negatives=3, random_state=5
        )
        sequential = QuadrupleFeatureCache.build(
            quadruples, gowalla_split, model, workers=1
        )
        sharded = QuadrupleFeatureCache.build(
            quadruples, gowalla_split, model, workers=3
        )
        assert np.array_equal(sequential.positive, sharded.positive)
        assert np.array_equal(sequential.negative, sharded.negative)

    def test_nonpositive_workers_rejected(self, gowalla_split):
        model = BehavioralFeatureModel().fit(gowalla_split.train_dataset(), WINDOW)
        quadruples = sample_quadruples(
            gowalla_split, WINDOW, n_negatives=2, random_state=5
        )
        with pytest.raises(SamplingError, match="workers"):
            QuadrupleFeatureCache.build(
                quadruples, gowalla_split, model, workers=0
            )

    def test_realistic_build(self, gowalla_split):
        window = WindowConfig()
        model = BehavioralFeatureModel().fit(gowalla_split.train_dataset(), window)
        quadruples = sample_quadruples(
            gowalla_split, window, n_negatives=3, random_state=7
        )
        cache = QuadrupleFeatureCache.build(quadruples, gowalla_split, model)
        assert cache.positive.shape == (len(quadruples), 4)
        assert np.all(np.isfinite(cache.positive))
        assert np.all(np.isfinite(cache.negative))
        # Positives were reconsumed; on average their features should
        # exceed the negatives' (that is the whole premise of Fig 4).
        assert cache.differences().mean() > 0
