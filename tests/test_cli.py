"""Tests for the CLI entry point."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "fig5"])
        assert args.experiment == "fig5"
        assert args.scale == "fast"
        assert args.output is None

    def test_run_with_options(self, tmp_path):
        out = tmp_path / "res.txt"
        args = build_parser().parse_args(
            ["run", "table2", "--scale", "smoke", "--output", str(out)]
        )
        assert args.scale == "smoke"
        assert args.output == out

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig5", "--scale", "huge"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_prints_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out
        assert "table5" in out

    def test_run_table4_smoke(self, capsys):
        assert main(["run", "table4", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Default settings" in out

    def test_run_writes_output_file(self, tmp_path, capsys):
        out_file = tmp_path / "table2.txt"
        assert main(
            ["run", "table2", "--scale", "smoke", "--output", str(out_file)]
        ) == 0
        assert "Statistics" in out_file.read_text()

    def test_run_unknown_experiment_raises(self):
        from repro.exceptions import ExperimentError

        with pytest.raises(ExperimentError):
            main(["run", "fig99", "--scale", "smoke"])
