"""Tests for repro.evaluation.ascii_charts."""

import pytest

from repro.evaluation.ascii_charts import bar_chart, line_chart, sparkline
from repro.exceptions import EvaluationError


class TestBarChart:
    def test_scales_to_peak(self):
        text = bar_chart({"a": 0.5, "b": 1.0}, width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_labels_aligned(self):
        text = bar_chart({"short": 1.0, "a-long-label": 1.0}, width=4)
        lines = text.splitlines()
        assert lines[0].index("#") == lines[1].index("#")

    def test_zero_values_render_empty_bars(self):
        text = bar_chart({"a": 0.0, "b": 0.0}, width=8)
        assert "#" not in text

    def test_values_printed(self):
        text = bar_chart({"m": 0.1234}, width=5)
        assert "0.1234" in text

    def test_validation(self):
        with pytest.raises(EvaluationError):
            bar_chart({})
        with pytest.raises(EvaluationError):
            bar_chart({"a": 1.0}, width=0)
        with pytest.raises(EvaluationError):
            bar_chart({"a": -1.0})


class TestLineChart:
    def test_dimensions(self):
        text = line_chart({"s": [(0, 0), (1, 1)]}, width=20, height=5)
        lines = text.splitlines()
        framed = [line for line in lines if line.startswith("|")]
        assert len(framed) == 5
        assert all(len(line) == 22 for line in framed)

    def test_extremes_on_frame(self):
        text = line_chart({"s": [(0, 0), (10, 3)]}, width=10, height=4)
        assert "y_max=3" in text
        assert "y_min=0" in text
        assert "0 .. 10" in text

    def test_monotone_series_renders_diagonal(self):
        text = line_chart({"s": [(0, 0), (1, 1), (2, 2)]}, width=3, height=3)
        framed = [line for line in text.splitlines() if line.startswith("|")]
        # Bottom-left, center, top-right.
        assert framed[2][1] == "o"
        assert framed[1][2] == "o"
        assert framed[0][3] == "o"

    def test_multiple_series_get_symbols_and_legend(self):
        text = line_chart(
            {"first": [(0, 0)], "second": [(1, 1)]}, width=6, height=3
        )
        assert "o = first" in text
        assert "x = second" in text

    def test_constant_series_does_not_crash(self):
        text = line_chart({"flat": [(0, 2), (1, 2)]}, width=5, height=3)
        assert "y_max=2" in text

    def test_validation(self):
        with pytest.raises(EvaluationError):
            line_chart({})
        with pytest.raises(EvaluationError):
            line_chart({"s": []})
        with pytest.raises(EvaluationError):
            line_chart({"s": [(0, 0)]}, width=1)


class TestSparkline:
    def test_monotone(self):
        assert sparkline([0, 1, 2, 3]) == "▁▃▅█"

    def test_constant(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_single_value(self):
        assert sparkline([7]) == "▁"

    def test_empty_rejected(self):
        with pytest.raises(EvaluationError):
            sparkline([])
