"""Profile-guided startup: ``--profile`` must equal explicit flags, bit-for-bit.

The acceptance bar of the autotuning layer: starting a server from a
machine profile is pure *configuration plumbing* — a service built via
``--profile`` answers every request identically (same items, same order)
to one built from the equivalent explicit flags, for Recency and TS-PPR,
and every resolved knob is logged with its provenance. Same contract on
the training side: ``fit(profile=...)`` equals ``fit(fit_workers=...,
sgd_block=...)`` equals a plain ``fit()`` — the sgd_block knob chunks
kernel calls stream-exactly, so learned parameters never move.
"""

from __future__ import annotations

import logging
from typing import Dict, List

import pytest

from conftest import SMALL_WINDOW

from repro.config import TSPPRConfig
from repro.data.split import SplitDataset
from repro.models.base import Recommender
from repro.models.recency import RecencyRecommender
from repro.models.tsppr import TSPPRRecommender
from repro.serving.cli import (
    SERVE_KNOB_ARGS,
    build_parser,
    resolve_knob_args,
)
from repro.serving.service import ServiceConfig, service_for_split
from repro.tuning.defaults import defaults_for, values_of
from repro.tuning.profile import MachineProfile

K = 10

#: Deliberately non-default serving knobs a tune run might choose.
TUNED_SERVING = {
    **defaults_for("serving"),
    "batching": "microbatch",
    "max_batch": 16,
    "max_wait_ms": 0.5,
    "check_interval": 4,
    "max_inflight_rows": 4096,
    "capacity": 512,
    "store": "dict",
}

QUICK = TSPPRConfig(max_epochs=2000, seed=3)


@pytest.fixture()
def profile_path(tmp_path):
    profile = MachineProfile(machine={"cpu_count": 2}, created="t0")
    profile.set_subsystem("serving", TUNED_SERVING)
    profile.set_subsystem(
        "training", {"fit_workers": 2, "sgd_block": 512}
    )
    path = tmp_path / "profile.json"
    profile.save(path)
    return path


def replay(
    model: Recommender,
    split: SplitDataset,
    knobs: Dict[str, object],
    users,
) -> Dict[int, List[List[int]]]:
    """Replay test suffixes through a service built from ``knobs``."""
    config = ServiceConfig(
        window=SMALL_WINDOW,
        default_k=K,
        n_items=split.n_items,
        batching=str(knobs["batching"]),
        max_batch=int(knobs["max_batch"]),
        max_wait_ms=float(knobs["max_wait_ms"]),
        check_interval=int(knobs["check_interval"]),
        max_inflight_rows=int(knobs["max_inflight_rows"]),
        admission_wait_ms=float(knobs["admission_wait_ms"]),
    )
    online: Dict[int, List[List[int]]] = {user: [] for user in users}
    with service_for_split(
        model,
        split,
        config=config,
        capacity=int(knobs["capacity"]),
        store=str(knobs["store"]),
    ) as service:
        for user in users:
            items = split.full_sequence(user).items[
                split.train_boundary(user):
            ].tolist()
            for item in items:
                result = service.step(user, item, k=K)
                if result is not None:
                    online[user].append(result.items)
    return online


def knobs_via_profile(profile_path) -> Dict[str, object]:
    """What ``repro-serve serve --profile <path>`` resolves to."""
    args = build_parser().parse_args(
        ["serve", "--profile", str(profile_path)]
    )
    return values_of(resolve_knob_args(args, "serving", SERVE_KNOB_ARGS))


class TestServingBitIdentity:
    def test_profile_resolves_to_tuned_values(self, profile_path) -> None:
        assert knobs_via_profile(profile_path) == TUNED_SERVING

    def test_recency_profile_equals_explicit_flags(
        self, gowalla_split: SplitDataset, profile_path
    ) -> None:
        model = RecencyRecommender().fit(gowalla_split, SMALL_WINDOW)
        users = [0, 1, 2]
        via_profile = replay(
            model, gowalla_split, knobs_via_profile(profile_path), users
        )
        via_flags = replay(model, gowalla_split, TUNED_SERVING, users)
        assert via_profile == via_flags
        assert any(any(lists) for lists in via_profile.values())

    def test_tsppr_profile_equals_explicit_flags(
        self, gowalla_split: SplitDataset, profile_path
    ) -> None:
        model = TSPPRRecommender(QUICK).fit(gowalla_split, SMALL_WINDOW)
        users = [0, 1]
        via_profile = replay(
            model, gowalla_split, knobs_via_profile(profile_path), users
        )
        via_flags = replay(model, gowalla_split, TUNED_SERVING, users)
        assert via_profile == via_flags

    def test_resolution_logs_every_knob_with_provenance(
        self, profile_path, caplog
    ) -> None:
        args = build_parser().parse_args(
            ["serve", "--profile", str(profile_path), "--max-batch", "32"]
        )
        with caplog.at_level(logging.INFO, logger="repro.serving.cli"):
            resolve_knob_args(args, "serving", SERVE_KNOB_ARGS)
        line = next(
            record.getMessage()
            for record in caplog.records
            if "resolved serving knobs" in record.getMessage()
        )
        assert "max_batch=32(cli)" in line
        assert "batching=microbatch(profile)" in line
        assert str(profile_path) in line
        for name in SERVE_KNOB_ARGS:
            assert f"{name}=" in line


class TestTrainingBitIdentity:
    def test_sgd_block_is_stream_exact(
        self, gowalla_split: SplitDataset
    ) -> None:
        """Chunked block-SGD kernels learn bit-identical parameters."""
        import numpy as np

        whole = TSPPRRecommender(QUICK).fit(gowalla_split, SMALL_WINDOW)
        chunked = TSPPRRecommender(QUICK).fit(
            gowalla_split, SMALL_WINDOW, sgd_block=512
        )
        assert (
            whole.sgd_result_.margin_history
            == chunked.sgd_result_.margin_history
        )
        np.testing.assert_array_equal(whole.user_factors_, chunked.user_factors_)
        np.testing.assert_array_equal(whole.item_factors_, chunked.item_factors_)
        np.testing.assert_array_equal(whole.mappings_, chunked.mappings_)

    def test_fit_profile_equals_explicit_knobs(
        self, gowalla_split: SplitDataset, profile_path
    ) -> None:
        import numpy as np

        via_profile = TSPPRRecommender(QUICK).fit(
            gowalla_split, SMALL_WINDOW, profile=profile_path
        )
        explicit = TSPPRRecommender(QUICK).fit(
            gowalla_split, SMALL_WINDOW, fit_workers=2, sgd_block=512
        )
        plain = TSPPRRecommender(QUICK).fit(gowalla_split, SMALL_WINDOW)
        np.testing.assert_array_equal(
            via_profile.user_factors_, explicit.user_factors_
        )
        np.testing.assert_array_equal(
            via_profile.user_factors_, plain.user_factors_
        )
        np.testing.assert_array_equal(
            via_profile.item_factors_, plain.item_factors_
        )
        assert via_profile._fit_workers == 2
        assert via_profile._sgd_block == 512

    def test_explicit_argument_beats_profile(
        self, gowalla_split: SplitDataset, profile_path
    ) -> None:
        model = TSPPRRecommender(QUICK).fit(
            gowalla_split,
            SMALL_WINDOW,
            fit_workers=1,
            profile=profile_path,
        )
        assert model._fit_workers == 1  # explicit beats the profile's 2
        assert model._sgd_block == 512  # unset, so the profile fills it
