"""Scalar vs vectorized training engines must match bit for bit.

The ``training_engine="vectorized"`` pipeline (incremental-session
sampling, session-walk feature cache, dependency-batched block SGD) is a
pure performance path: every learned parameter array, the margin
history, and the sampled quadruples must equal the seed-style scalar
pipeline exactly — ``np.array_equal``, not ``allclose``. These tests pin
that contract for every model and config ablation, plus the individual
batched-numpy identities the block kernels rely on.
"""

import numpy as np
import pytest

from repro.config import TSPPRConfig, WindowConfig
from repro.models.fpmc import FPMCRecommender
from repro.models.ppr import PPRRecommender
from repro.models.tsppr import TSPPRRecommender
from repro.optim.lasso import sigmoid

WINDOW = WindowConfig(window_size=10, min_gap=2)


def _fit_pair(model_factory, split, **fit_kwargs):
    """Fit the same model under both engines; returns (scalar, vectorized)."""
    fitted = []
    for engine in ("scalar", "vectorized"):
        model = model_factory(engine)
        model.fit(split, WINDOW, **fit_kwargs)
        fitted.append(model)
    return fitted


class TestBatchedOpIdentities:
    """The numpy formulations the kernels use are bit-identical per row.

    These are build-level guarantees (BLAS dispatch, ufunc evaluation
    order), so each is pinned directly: if an interpreter/BLAS upgrade
    breaks one, this points at the exact op instead of a diverged fit.
    """

    def test_stacked_matvec_matches_per_row(self):
        rng = np.random.default_rng(3)
        A = rng.normal(size=(17, 6, 4))
        d = rng.normal(size=(17, 4))
        stacked = np.matmul(A, d[:, :, None])[:, :, 0]
        rows = np.stack([A[i] @ d[i] for i in range(17)])
        assert np.array_equal(stacked, rows)

    def test_stacked_dot_matches_per_row(self):
        rng = np.random.default_rng(5)
        u = rng.normal(size=(23, 8))
        s = rng.normal(size=(23, 8))
        stacked = np.matmul(u[:, None, :], s[:, :, None])[:, 0, 0]
        rows = np.array([float(u[i] @ s[i]) for i in range(23)])
        assert np.array_equal(stacked, rows)

    def test_inlined_sigmoid_matches_alpha_sigmoid_neg(self):
        # The kernels inline ``alpha * sigmoid(-margin)`` using
        # |−z| == |z| and (−z >= 0) iff (z <= 0), which holds for ±0.0
        # too; NaN takes the same branch in both formulations.
        margins = np.array(
            [-50.0, -3.2, -1e-12, -0.0, 0.0, 1e-12, 0.7, 3.2, 50.0, 710.0]
        )
        alpha = 0.05
        exp_term = np.exp(np.negative(np.abs(margins)))
        denom = exp_term + 1.0
        coeffs = np.where(margins <= 0.0, 1.0 / denom, exp_term / denom)
        coeffs *= alpha
        assert np.array_equal(coeffs, alpha * sigmoid(-margins))


def _assert_tsppr_equal(scalar, vectorized):
    assert np.array_equal(scalar.user_factors_, vectorized.user_factors_)
    assert np.array_equal(scalar.item_factors_, vectorized.item_factors_)
    assert np.array_equal(scalar.mappings_, vectorized.mappings_)
    assert scalar.sgd_result_ == vectorized.sgd_result_
    assert scalar.n_quadruples_ == vectorized.n_quadruples_


class TestTSPPREquivalence:
    def test_full_fit_bit_identical(self, gowalla_split):
        scalar, vectorized = _fit_pair(
            lambda engine: TSPPRRecommender(
                TSPPRConfig(max_epochs=6000, seed=11, training_engine=engine)
            ),
            gowalla_split,
        )
        _assert_tsppr_equal(scalar, vectorized)

    def test_shared_mapping_bit_identical(self, gowalla_split):
        scalar, vectorized = _fit_pair(
            lambda engine: TSPPRRecommender(
                TSPPRConfig(
                    max_epochs=3000,
                    seed=12,
                    share_mapping=True,
                    training_engine=engine,
                )
            ),
            gowalla_split,
        )
        _assert_tsppr_equal(scalar, vectorized)

    def test_no_static_term_bit_identical(self, gowalla_split):
        scalar, vectorized = _fit_pair(
            lambda engine: TSPPRRecommender(
                TSPPRConfig(
                    max_epochs=3000,
                    seed=13,
                    use_static_term=False,
                    training_engine=engine,
                )
            ),
            gowalla_split,
        )
        _assert_tsppr_equal(scalar, vectorized)

    def test_fit_workers_bit_identical(self, gowalla_split):
        # Worker sharding only parallelizes the feature-cache build;
        # rows land at their global indices, so any worker count must
        # reproduce the sequential arrays exactly.
        config = TSPPRConfig(max_epochs=3000, seed=14)
        sequential = TSPPRRecommender(config)
        sequential.fit(gowalla_split, WINDOW, fit_workers=1)
        sharded = TSPPRRecommender(config)
        sharded.fit(gowalla_split, WINDOW, fit_workers=2)
        _assert_tsppr_equal(sequential, sharded)


class TestBaselineEquivalence:
    def test_ppr_bit_identical(self, gowalla_split):
        scalar, vectorized = _fit_pair(
            lambda engine: PPRRecommender(
                TSPPRConfig(max_epochs=6000, seed=21, training_engine=engine)
            ),
            gowalla_split,
        )
        assert np.array_equal(scalar.user_factors_, vectorized.user_factors_)
        assert np.array_equal(scalar.item_factors_, vectorized.item_factors_)
        assert scalar.sgd_result_ == vectorized.sgd_result_
        assert scalar.n_quadruples_ == vectorized.n_quadruples_

    def test_fpmc_bit_identical(self, gowalla_split):
        scalar, vectorized = _fit_pair(
            lambda engine: FPMCRecommender(
                TSPPRConfig(max_epochs=4000, seed=22, training_engine=engine)
            ),
            gowalla_split,
        )
        assert np.array_equal(scalar.user_factors_, vectorized.user_factors_)
        assert np.array_equal(
            scalar.item_user_factors_, vectorized.item_user_factors_
        )
        assert np.array_equal(
            scalar.item_basket_factors_, vectorized.item_basket_factors_
        )
        assert np.array_equal(
            scalar.basket_item_factors_, vectorized.basket_item_factors_
        )
        assert scalar.sgd_result_ == vectorized.sgd_result_
