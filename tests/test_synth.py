"""Tests for repro.synth — generators must produce the regimes they claim."""

import numpy as np
import pytest

from repro.data.loaders import load_event_log
from repro.data.stats import per_user_repeat_ratio
from repro.exceptions import DataError
from repro.synth.base import SyntheticConfig, generate_dataset
from repro.synth.copying import (
    most_recent_beyond_gap,
    repeat_weights,
    simulate_user_sequence,
)
from repro.synth.gowalla import GOWALLA_PRESET, generate_gowalla
from repro.synth.lastfm import LASTFM_PRESET, generate_lastfm, write_lastfm_event_log
from repro.synth.popularity import ZipfPopularity


class TestZipfPopularity:
    def test_probabilities_sum_to_one(self):
        zipf = ZipfPopularity(100, 1.0)
        assert zipf.probabilities.sum() == pytest.approx(1.0)

    def test_rank_order(self):
        zipf = ZipfPopularity(50, 1.2)
        assert np.all(np.diff(zipf.probabilities) < 0)

    def test_zero_exponent_is_uniform(self):
        zipf = ZipfPopularity(10, 0.0)
        assert np.allclose(zipf.probabilities, 0.1)

    def test_sample_within_bounds_and_biased(self, rng):
        zipf = ZipfPopularity(20, 1.5)
        samples = zipf.sample(5000, rng)
        assert samples.min() >= 0 and samples.max() < 20
        counts = np.bincount(samples, minlength=20)
        assert counts[0] > counts[10]

    def test_sample_distinct(self, rng):
        zipf = ZipfPopularity(30, 1.0)
        items = zipf.sample_distinct(10, rng)
        assert len(set(items.tolist())) == 10
        assert items.min() >= 0 and items.max() < 30

    def test_sample_distinct_full_universe(self, rng):
        zipf = ZipfPopularity(5, 2.0)
        items = zipf.sample_distinct(5, rng)
        assert sorted(items.tolist()) == [0, 1, 2, 3, 4]

    def test_sample_distinct_too_many(self, rng):
        with pytest.raises(DataError):
            ZipfPopularity(3).sample_distinct(4, rng)

    def test_validation(self):
        with pytest.raises(DataError):
            ZipfPopularity(0)
        with pytest.raises(DataError):
            ZipfPopularity(5, -1.0)


class TestRepeatWeights:
    def test_empty_history(self):
        items, weights = repeat_weights([], 10, 1.0, 1.0)
        assert items == [] and weights.size == 0

    def test_frequency_and_recency_effects(self):
        history = [1, 1, 1, 2]
        items, weights = repeat_weights(history, 10, 1.0, 0.0)
        by_item = dict(zip(items, weights))
        assert by_item[1] == pytest.approx(3.0)  # count^1
        assert by_item[2] == pytest.approx(1.0)

        items, weights = repeat_weights(history, 10, 0.0, 1.0)
        by_item = dict(zip(items, weights))
        assert by_item[2] == pytest.approx(1.0)       # gap 1
        assert by_item[1] == pytest.approx(1.0 / 2.0)  # gap 2

    def test_memory_span_limits(self):
        history = [5, 1, 1]
        items, _ = repeat_weights(history, 2, 1.0, 1.0)
        assert items == [1]

    def test_affinity_multiplies(self):
        history = [1, 2]
        _, base = repeat_weights(history, 10, 1.0, 0.0)
        _, boosted = repeat_weights(history, 10, 1.0, 0.0, {1: 10.0})
        assert boosted[0] == pytest.approx(10.0 * base[0])


class TestMostRecentBeyondGap:
    def test_finds_resumable_item(self):
        #          t: 0  1  2  3
        history = [7, 8, 9, 8]
        # min_gap 2 excludes items in the last 2 steps: {9, 8}.
        assert most_recent_beyond_gap(history, 10, 2) == 7

    def test_none_when_everything_recent(self):
        assert most_recent_beyond_gap([1, 2], 10, 5) is None

    def test_memory_span_respected(self):
        history = [7] + [1, 2] * 5
        # min_gap=2 excludes both alternating items -> nothing resumable
        # inside the 4-step memory (7 is too old to be remembered).
        assert most_recent_beyond_gap(history, 4, 2) is None
        # min_gap=1 only excludes the very last item (2); the most
        # recent eligible in-memory item is 1.
        assert most_recent_beyond_gap(history, 4, 1) == 1


class TestSimulateUserSequence:
    def test_deterministic(self, rng):
        catalog = np.arange(10)
        weights = np.ones(10)
        kwargs = dict(
            length=50, catalog=catalog, catalog_weights=weights,
            p_explore=0.5, memory_span=20,
            frequency_exponent=1.0, recency_exponent=1.0,
        )
        a = simulate_user_sequence(random_state=5, **kwargs)
        b = simulate_user_sequence(random_state=5, **kwargs)
        assert np.array_equal(a, b)

    def test_items_come_from_catalog(self):
        catalog = np.array([3, 7, 11])
        sequence = simulate_user_sequence(
            length=100, catalog=catalog, catalog_weights=np.ones(3),
            p_explore=0.4, memory_span=10,
            frequency_exponent=1.0, recency_exponent=1.0, random_state=1,
        )
        assert set(sequence.tolist()) <= {3, 7, 11}

    def test_zero_explore_repeats_only_first_item(self):
        sequence = simulate_user_sequence(
            length=30, catalog=np.arange(5), catalog_weights=np.ones(5),
            p_explore=0.0, memory_span=10,
            frequency_exponent=1.0, recency_exponent=1.0, random_state=2,
        )
        assert len(set(sequence.tolist())) == 1

    def test_validation(self):
        with pytest.raises(DataError):
            simulate_user_sequence(
                length=0, catalog=np.arange(3), catalog_weights=np.ones(3),
                p_explore=0.5, memory_span=5,
                frequency_exponent=1.0, recency_exponent=1.0,
            )
        with pytest.raises(DataError):
            simulate_user_sequence(
                length=5, catalog=np.arange(3), catalog_weights=np.ones(2),
                p_explore=0.5, memory_span=5,
                frequency_exponent=1.0, recency_exponent=1.0,
            )
        with pytest.raises(DataError):
            simulate_user_sequence(
                length=5, catalog=np.arange(3), catalog_weights=np.ones(3),
                p_explore=1.5, memory_span=5,
                frequency_exponent=1.0, recency_exponent=1.0,
            )

    def test_drift_changes_sequence(self):
        kwargs = dict(
            length=200, catalog=np.arange(20),
            catalog_weights=np.ones(20), p_explore=0.4, memory_span=30,
            frequency_exponent=1.0, recency_exponent=1.0,
            affinity_strength=1.0, random_state=4,
        )
        static = simulate_user_sequence(**kwargs)
        drifting = simulate_user_sequence(drift_interval=20, **kwargs)
        assert not np.array_equal(static, drifting)


class TestGeneratorRegimes:
    def test_generate_dataset_deterministic(self):
        config = SyntheticConfig(name="t", n_users=4, n_items=200,
                                 sequence_length_range=(50, 80),
                                 catalog_size_range=(10, 20))
        a = generate_dataset(config, random_state=7)
        b = generate_dataset(config, random_state=7)
        for u in range(4):
            assert a.sequence(u) == b.sequence(u)

    def test_lastfm_repeat_rate_near_77_percent(self, lastfm_dataset):
        ratios = per_user_repeat_ratio(lastfm_dataset, window_size=100)
        assert 0.6 < ratios.mean() < 0.9

    def test_gowalla_repeat_rate_moderate(self, gowalla_dataset):
        ratios = per_user_repeat_ratio(gowalla_dataset, window_size=100)
        assert 0.4 < ratios.mean() < 0.9

    def test_scaling_factors(self):
        small = generate_gowalla(random_state=1, user_factor=0.1)
        assert small.n_users == max(2, int(GOWALLA_PRESET.n_users * 0.1))

    def test_lastfm_preset_name(self, lastfm_dataset):
        assert lastfm_dataset.name == "Lastfm-like"

    def test_event_log_round_trip_with_skip_filter(self, tmp_path):
        dataset = generate_lastfm(random_state=3, user_factor=0.05,
                                  length_factor=0.2)
        path = tmp_path / "listens.tsv"
        n_rows = write_lastfm_event_log(path, dataset, skip_fraction=0.2,
                                        random_state=9)
        assert n_rows > dataset.n_consumptions()  # skips were injected
        reloaded = load_event_log(path, min_duration=30.0)
        assert reloaded.n_consumptions() == dataset.n_consumptions()
        # Sequences match after the sub-30s dislikes are filtered out.
        for user_id in reloaded.user_vocab:
            new_user = reloaded.user_vocab.index_of(user_id)
            old_user = dataset.user_vocab.index_of(int(user_id))
            new_items = [
                reloaded.item_vocab.id_of(i) for i in reloaded.sequence(new_user)
            ]
            old_items = [
                str(dataset.item_vocab.id_of(i))
                for i in dataset.sequence(old_user)
            ]
            assert new_items == old_items
