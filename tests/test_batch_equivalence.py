"""Bit-identity guarantees of the batch-scoring engine.

Three contracts:

* ``score_batch`` returns exactly what per-query ``score`` calls return,
  for every bundled model (``np.array_equal``, not ``allclose``);
* the query-driven evaluation walk produces the same ``UserCounts`` as a
  seed-style per-position ``recommend`` loop;
* ``evaluate_recommender(workers=4)`` returns the same
  ``AccuracyResult`` as ``workers=1``.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from conftest import SMALL_WINDOW

from repro.config import EvaluationConfig, TSPPRConfig
from repro.data.split import SplitDataset
from repro.engine import Query
from repro.evaluation.metrics import UserCounts
from repro.evaluation.protocol import (
    collect_queries,
    evaluate_recommender,
    evaluate_user,
)
from repro.models.base import Recommender
from repro.models.dyrc import DYRCRecommender
from repro.models.fpmc import FPMCRecommender
from repro.models.pop import PopRecommender
from repro.models.ppr import PPRRecommender
from repro.models.random_rec import RandomRecommender
from repro.models.recency import RecencyRecommender
from repro.models.survival import SurvivalRecommender
from repro.models.tsppr import TSPPRRecommender
from repro.novel.models import NovelPopRecommender
from repro.windows.repeat import iter_evaluation_positions

#: Training budget small enough for per-test fits of the learned models.
QUICK = TSPPRConfig(max_epochs=3000, seed=3)


def _user_queries(split: SplitDataset, user: int):
    return collect_queries(
        split.full_sequence(user),
        split.train_boundary(user),
        SMALL_WINDOW.window_size,
        SMALL_WINDOW.min_gap,
        user=user,
    )


def assert_batch_matches_per_query(
    model: Recommender, split: SplitDataset, n_users: int = 4
) -> int:
    """Assert bit-identity on every evaluation query of the first users.

    Returns the number of queries compared so callers can require
    non-trivial coverage.
    """
    compared = 0
    for user in range(min(n_users, split.n_users)):
        sequence = split.full_sequence(user)
        queries = _user_queries(split, user)
        if not queries:
            continue
        batched = model.score_batch(sequence, queries)
        assert len(batched) == len(queries)
        for query, scores in zip(queries, batched):
            reference = model.score(sequence, list(query.candidates), query.t)
            np.testing.assert_array_equal(
                scores,
                reference,
                err_msg=f"{type(model).__name__} diverges at t={query.t}",
            )
            compared += 1
    assert compared > 0, "no evaluation queries found — test is vacuous"
    return compared


class TestScoreBatchEquivalence:
    def test_pop(self, gowalla_split):
        model = PopRecommender().fit(gowalla_split, SMALL_WINDOW)
        assert_batch_matches_per_query(model, gowalla_split)

    def test_recency(self, gowalla_split):
        model = RecencyRecommender().fit(gowalla_split, SMALL_WINDOW)
        assert_batch_matches_per_query(model, gowalla_split)

    def test_dyrc(self, gowalla_split):
        model = DYRCRecommender(n_iterations=25).fit(gowalla_split, SMALL_WINDOW)
        assert_batch_matches_per_query(model, gowalla_split)

    def test_survival(self, gowalla_split):
        model = SurvivalRecommender().fit(gowalla_split, SMALL_WINDOW)
        assert_batch_matches_per_query(model, gowalla_split)

    def test_survival_hazard_mode(self, gowalla_split):
        model = SurvivalRecommender(mode="hazard").fit(
            gowalla_split, SMALL_WINDOW
        )
        assert_batch_matches_per_query(model, gowalla_split, n_users=2)

    def test_ppr(self, gowalla_split):
        model = PPRRecommender(QUICK).fit(gowalla_split, SMALL_WINDOW)
        assert_batch_matches_per_query(model, gowalla_split)

    def test_fpmc(self, gowalla_split):
        model = FPMCRecommender(QUICK).fit(gowalla_split, SMALL_WINDOW)
        assert_batch_matches_per_query(model, gowalla_split)

    def test_fpmc_with_user_term(self, gowalla_split):
        model = FPMCRecommender(QUICK, use_user_term=True).fit(
            gowalla_split, SMALL_WINDOW
        )
        assert_batch_matches_per_query(model, gowalla_split, n_users=2)

    @pytest.mark.parametrize("recency_kind", ["hyperbolic", "exponential"])
    def test_tsppr(self, gowalla_split, recency_kind):
        config = QUICK.with_overrides(recency_kind=recency_kind)
        model = TSPPRRecommender(config).fit(gowalla_split, SMALL_WINDOW)
        assert_batch_matches_per_query(model, gowalla_split, n_users=3)

    def test_novel_pop_keeps_demotion(self, gowalla_split):
        model = NovelPopRecommender().fit(gowalla_split, SMALL_WINDOW)
        compared = 0
        for user in range(3):
            sequence = gowalla_split.full_sequence(user)
            queries = _user_queries(gowalla_split, user)
            if not queries:
                continue
            batched = model.score_batch(sequence, queries)
            for query, scores in zip(queries, batched):
                reference = model.score(
                    sequence, list(query.candidates), query.t
                )
                np.testing.assert_array_equal(scores, reference)
                # RRC candidates are always already consumed, so the
                # novel model must have demoted all of them.
                assert np.all(np.isneginf(scores))
                compared += 1
        assert compared > 0

    def test_random_draws_identical_stream(self, gowalla_split):
        sequence = gowalla_split.full_sequence(0)
        queries = _user_queries(gowalla_split, 0)
        assert queries
        reference = RandomRecommender(random_state=123).fit(
            gowalla_split, SMALL_WINDOW
        )
        batched = RandomRecommender(random_state=123).fit(
            gowalla_split, SMALL_WINDOW
        )
        expected = [
            reference.score(sequence, list(q.candidates), q.t) for q in queries
        ]
        actual = batched.score_batch(sequence, queries)
        for left, right in zip(expected, actual):
            np.testing.assert_array_equal(left, right)

    def test_out_of_order_queries_return_input_order(self, gowalla_split):
        model = RecencyRecommender().fit(gowalla_split, SMALL_WINDOW)
        sequence = gowalla_split.full_sequence(0)
        queries = _user_queries(gowalla_split, 0)
        assert len(queries) >= 2
        shuffled = list(reversed(queries))
        batched = model.score_batch(sequence, shuffled)
        for query, scores in zip(shuffled, batched):
            reference = model.score(sequence, list(query.candidates), query.t)
            np.testing.assert_array_equal(scores, reference)


class TestRecommendBatch:
    def test_matches_single_query_wrapper(self, gowalla_split):
        model = PopRecommender().fit(gowalla_split, SMALL_WINDOW)
        sequence = gowalla_split.full_sequence(0)
        queries = _user_queries(gowalla_split, 0)
        batched = model.recommend_batch(sequence, queries, 5)
        for query, ranked in zip(queries, batched):
            assert ranked == model.recommend(
                sequence, list(query.candidates), query.t, 5
            )

    def test_empty_candidates_yield_empty_list(self, gowalla_split):
        model = PopRecommender().fit(gowalla_split, SMALL_WINDOW)
        sequence = gowalla_split.full_sequence(0)
        queries = [Query(t=2, candidates=()), Query(t=3, candidates=(0, 1))]
        ranked = model.recommend_batch(sequence, queries, 5)
        assert ranked[0] == []
        assert len(ranked[1]) == 2


class TestDeprecationBoundary:
    def test_score_only_subclass_warns_once(self, gowalla_split):
        class LegacyScorer(Recommender):
            name = "legacy"

            def _fit(self, split, window):
                return

            def score(self, sequence, candidates, t):
                return np.zeros(len(candidates))

        model = LegacyScorer().fit(gowalla_split, SMALL_WINDOW)
        sequence = gowalla_split.full_sequence(0)
        queries = [Query(t=3, candidates=(0, 1))]
        with pytest.warns(DeprecationWarning, match="per-query"):
            model.score_batch(sequence, queries)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            model.score_batch(sequence, queries)  # warned once per class

    def test_bundled_models_do_not_warn(self, gowalla_split):
        sequence = gowalla_split.full_sequence(0)
        queries = _user_queries(gowalla_split, 0)[:3]
        assert queries
        models = [
            PopRecommender(),
            RecencyRecommender(),
            RandomRecommender(random_state=1),
            SurvivalRecommender(),
            DYRCRecommender(n_iterations=5),
            NovelPopRecommender(),
        ]
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            for model in models:
                model.fit(gowalla_split, SMALL_WINDOW)
                model.score_batch(sequence, queries)

    def test_neither_method_overridden_raises(self, gowalla_split):
        class Hollow(Recommender):
            name = "hollow"

            def _fit(self, split, window):
                return

        model = Hollow().fit(gowalla_split, SMALL_WINDOW)
        sequence = gowalla_split.full_sequence(0)
        with pytest.raises(NotImplementedError, match="score"):
            model.score(sequence, [0], 3)
        with pytest.raises(NotImplementedError, match="score"):
            model.score_batch(sequence, [Query(t=3, candidates=(0,))])


class TestEvaluationEquivalence:
    def _seed_style_counts(
        self, model, split, user, top_ns, window_size, min_gap
    ) -> UserCounts:
        """The pre-engine evaluation loop, verbatim."""
        max_n = max(top_ns)
        sequence = split.full_sequence(user)
        boundary = split.train_boundary(user)
        n_targets = 0
        hits = {top_n: 0 for top_n in top_ns}
        for t, candidates in iter_evaluation_positions(
            sequence, boundary, window_size, min_gap
        ):
            truth = int(sequence[t])
            ranked = model.recommend(sequence, candidates, t, max_n)
            n_targets += 1
            try:
                position = ranked.index(truth)
            except ValueError:
                continue
            for top_n in top_ns:
                if position < top_n:
                    hits[top_n] += 1
        return UserCounts(n_targets=n_targets, hits=hits)

    def test_engine_walk_matches_seed_walk(self, gowalla_split):
        model = RecencyRecommender().fit(gowalla_split, SMALL_WINDOW)
        top_ns = (1, 5, 10)
        for user in range(min(5, gowalla_split.n_users)):
            expected = self._seed_style_counts(
                model,
                gowalla_split,
                user,
                top_ns,
                SMALL_WINDOW.window_size,
                SMALL_WINDOW.min_gap,
            )
            actual = evaluate_user(
                model,
                gowalla_split,
                user,
                top_ns,
                SMALL_WINDOW.window_size,
                SMALL_WINDOW.min_gap,
            )
            assert actual.n_targets == expected.n_targets
            assert dict(actual.hits) == dict(expected.hits)

    @pytest.mark.parametrize(
        "make_model",
        [
            lambda: RecencyRecommender(),
            lambda: PopRecommender(),
            lambda: DYRCRecommender(n_iterations=10),
        ],
        ids=["recency", "pop", "dyrc"],
    )
    def test_parallel_workers_bit_identical(self, gowalla_split, make_model):
        model = make_model().fit(gowalla_split, SMALL_WINDOW)
        config = EvaluationConfig(window=SMALL_WINDOW)
        sequential = evaluate_recommender(model, gowalla_split, config)
        parallel = evaluate_recommender(
            model, gowalla_split, config, workers=4
        )
        assert parallel == sequential

    def test_parallel_tsppr_bit_identical(self, fitted_tsppr, gowalla_split):
        sequential = evaluate_recommender(fitted_tsppr, gowalla_split)
        parallel = evaluate_recommender(fitted_tsppr, gowalla_split, workers=4)
        assert parallel == sequential

    def test_nondeterministic_model_falls_back_sequential(self, gowalla_split):
        config = EvaluationConfig(window=SMALL_WINDOW)
        sequential = evaluate_recommender(
            RandomRecommender(random_state=7).fit(gowalla_split, SMALL_WINDOW),
            gowalla_split,
            config,
        )
        parallel_requested = evaluate_recommender(
            RandomRecommender(random_state=7).fit(gowalla_split, SMALL_WINDOW),
            gowalla_split,
            config,
            workers=4,
        )
        # Falls back to the sequential path, so the RNG stream — and the
        # result — are identical.
        assert parallel_requested == sequential
