"""The incremental scoring engine against the reference window helpers.

Every accessor of :class:`ScoringSession` is asserted equal, position by
position, to the from-scratch computations in :mod:`repro.windows`, and
:class:`SessionFeatureMatrix` must reproduce
:meth:`BehavioralFeatureModel.matrix` bit-for-bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import WindowConfig
from repro.data.split import SplitDataset
from repro.engine import Query, ScoringSession, SessionFeatureMatrix
from repro.engine.query import as_queries, iter_queries_in_order
from repro.evaluation.protocol import collect_queries
from repro.exceptions import DataError, EvaluationError
from repro.features.vectorizer import BehavioralFeatureModel
from repro.windows.repeat import (
    candidate_items,
    is_valid_target,
    iter_evaluation_positions,
    recent_items,
)
from repro.windows.window import window_before

from conftest import SMALL_WINDOW


class TestQuery:
    def test_coerces_candidates_to_tuple(self):
        query = Query(t=3, candidates=[4, 1, 2])
        assert query.candidates == (4, 1, 2)
        assert len(query) == 3

    def test_rejects_negative_position(self):
        with pytest.raises(EvaluationError, match="position"):
            Query(t=-1, candidates=(0,))

    def test_as_queries_wraps_pairs(self):
        queries = as_queries([(5, [1, 2]), (9, [3])])
        assert [q.t for q in queries] == [5, 9]
        assert queries[0].candidates == (1, 2)
        assert queries[0].truth is None

    def test_iter_queries_in_order_is_stable(self):
        queries = [
            Query(t=7, candidates=(1,)),
            Query(t=2, candidates=(2,)),
            Query(t=7, candidates=(3,)),
        ]
        visited = list(iter_queries_in_order(queries))
        assert [index for index, _ in visited] == [1, 0, 2]
        assert [query.t for _, query in visited] == [2, 7, 7]


class TestScoringSession:
    def _reference_state(self, sequence, t, window_size, min_gap):
        window = window_before(sequence, t, window_size)
        return {
            "items": set(window.item_set),
            "candidates": candidate_items(sequence, t, window_size, min_gap),
            "recent": recent_items(sequence, t, min_gap),
        }

    def test_matches_reference_walk(self, gowalla_split: SplitDataset):
        window_size, min_gap = SMALL_WINDOW.window_size, SMALL_WINDOW.min_gap
        for user in range(min(4, gowalla_split.n_users)):
            sequence = gowalla_split.full_sequence(user)
            session = ScoringSession(sequence, window_size, min_gap=min_gap)
            for t in range(len(sequence)):
                session.advance_to(t)
                reference = self._reference_state(
                    sequence, t, window_size, min_gap
                )
                assert set(session.distinct_window_items()) == reference["items"]
                assert session.candidates() == reference["candidates"]
                window = window_before(sequence, t, window_size)
                for item in reference["items"]:
                    assert session.window_count(item) == window.count(item)
                assert session.is_target() == is_valid_target(
                    sequence, t, window_size, min_gap
                )

    def test_mid_sequence_start_matches_fresh_walk(
        self, gowalla_split: SplitDataset
    ):
        sequence = gowalla_split.full_sequence(0)
        start = len(sequence) // 2
        late = ScoringSession(
            sequence, SMALL_WINDOW.window_size,
            min_gap=SMALL_WINDOW.min_gap, start=start,
        )
        full = ScoringSession(
            sequence, SMALL_WINDOW.window_size, min_gap=SMALL_WINDOW.min_gap
        )
        full.advance_to(start)
        for t in range(start, len(sequence)):
            late.advance_to(t)
            full.advance_to(t)
            assert late.candidates() == full.candidates()
            assert late.is_target() == full.is_target()
            items = np.asarray(sorted(set(sequence.items.tolist())), dtype=np.int64)
            np.testing.assert_array_equal(
                late.last_positions(items), full.last_positions(items)
            )

    def test_last_positions_match_binary_search(self, gowalla_split: SplitDataset):
        sequence = gowalla_split.full_sequence(1)
        session = ScoringSession(sequence, SMALL_WINDOW.window_size)
        all_items = np.asarray(
            sorted(set(sequence.items.tolist())), dtype=np.int64
        )
        for t in range(0, len(sequence), 3):
            session.advance_to(t)
            expected = np.asarray(
                [sequence.last_position_before(int(v), t) for v in all_items],
                dtype=np.int64,
            )
            np.testing.assert_array_equal(
                session.last_positions(all_items), expected
            )

    def test_forward_only(self, gowalla_split: SplitDataset):
        sequence = gowalla_split.full_sequence(0)
        session = ScoringSession(sequence, 10)
        session.advance_to(5)
        with pytest.raises(DataError, match="forward-only"):
            session.advance_to(3)

    def test_cannot_advance_past_end(self, gowalla_split: SplitDataset):
        sequence = gowalla_split.full_sequence(0)
        session = ScoringSession(sequence, 10, start=len(sequence))
        with pytest.raises(DataError, match="advance past"):
            session.advance()

    def test_rejects_bad_construction(self, gowalla_split: SplitDataset):
        sequence = gowalla_split.full_sequence(0)
        with pytest.raises(DataError, match="window_size"):
            ScoringSession(sequence, 0)
        with pytest.raises(DataError, match="min_gap"):
            ScoringSession(sequence, 10, min_gap=-1)
        with pytest.raises(DataError, match="outside"):
            ScoringSession(sequence, 10, start=len(sequence) + 1)

    def test_window_view_matches_window_before(self, gowalla_split: SplitDataset):
        sequence = gowalla_split.full_sequence(2)
        session = ScoringSession(sequence, SMALL_WINDOW.window_size)
        for t in (0, 3, 11, len(sequence) - 1):
            session.advance_to(t)
            view = session.window_view()
            reference = window_before(sequence, t, SMALL_WINDOW.window_size)
            assert view.item_set == reference.item_set
            np.testing.assert_array_equal(view.items, reference.items)


class TestCollectQueries:
    def test_matches_iter_evaluation_positions(self, gowalla_split: SplitDataset):
        window_size, min_gap = SMALL_WINDOW.window_size, SMALL_WINDOW.min_gap
        for user in range(min(6, gowalla_split.n_users)):
            sequence = gowalla_split.full_sequence(user)
            boundary = gowalla_split.train_boundary(user)
            expected = list(
                iter_evaluation_positions(sequence, boundary, window_size, min_gap)
            )
            queries = collect_queries(
                sequence, boundary, window_size, min_gap, user=user
            )
            assert [(q.t, list(q.candidates)) for q in queries] == expected
            for query in queries:
                assert query.truth == int(sequence[query.t])

    def test_target_filter_drops_positions(self, gowalla_split: SplitDataset):
        sequence = gowalla_split.full_sequence(0)
        boundary = gowalla_split.train_boundary(0)
        all_queries = collect_queries(
            sequence, boundary, SMALL_WINDOW.window_size, SMALL_WINDOW.min_gap
        )
        kept = collect_queries(
            sequence,
            boundary,
            SMALL_WINDOW.window_size,
            SMALL_WINDOW.min_gap,
            user=0,
            target_filter=lambda user, t: t % 2 == 0,
        )
        assert [q.t for q in kept] == [q.t for q in all_queries if q.t % 2 == 0]


class TestSessionFeatureMatrix:
    @pytest.fixture(scope="class", params=["hyperbolic", "exponential"])
    def feature_model(self, request, gowalla_split: SplitDataset):
        model = BehavioralFeatureModel(recency_kind=request.param)
        model.fit(gowalla_split.train_dataset(), SMALL_WINDOW)
        return model

    def test_bit_identical_to_reference_matrix(
        self, feature_model: BehavioralFeatureModel, gowalla_split: SplitDataset
    ):
        for user in range(min(3, gowalla_split.n_users)):
            sequence = gowalla_split.full_sequence(user)
            session = ScoringSession(sequence, SMALL_WINDOW.window_size)
            fast = SessionFeatureMatrix(feature_model, session)
            for t in range(0, len(sequence), 2):
                session.advance_to(t)
                candidates = sorted(set(sequence.items[:t].tolist()))
                if not candidates:
                    continue
                items = np.asarray(candidates, dtype=np.int64)
                window = window_before(sequence, t, SMALL_WINDOW.window_size)
                reference = feature_model.matrix(sequence, candidates, t, window)
                np.testing.assert_array_equal(fast.matrix(items), reference)
