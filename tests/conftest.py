"""Shared fixtures: tiny deterministic datasets and fitted models.

Expensive artifacts (synthetic splits, fitted TS-PPR) are session-scoped
so the suite stays fast while many test modules can assert against the
same realistic objects.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SplitConfig, TSPPRConfig, WindowConfig
from repro.data.dataset import Dataset
from repro.data.split import SplitDataset, temporal_split
from repro.models.tsppr import TSPPRRecommender
from repro.synth.gowalla import generate_gowalla
from repro.synth.lastfm import generate_lastfm

#: Window protocol small enough for hand-checkable tests.
SMALL_WINDOW = WindowConfig(window_size=10, min_gap=2)


@pytest.fixture(scope="session")
def gowalla_dataset() -> Dataset:
    """A small but structurally realistic Gowalla-like dataset."""
    return generate_gowalla(random_state=101, user_factor=0.12, length_factor=0.6)


@pytest.fixture(scope="session")
def lastfm_dataset() -> Dataset:
    """A small but structurally realistic Lastfm-like dataset."""
    return generate_lastfm(random_state=202, user_factor=0.12, length_factor=0.6)


@pytest.fixture(scope="session")
def gowalla_split(gowalla_dataset: Dataset) -> SplitDataset:
    return temporal_split(gowalla_dataset)


@pytest.fixture(scope="session")
def lastfm_split(lastfm_dataset: Dataset) -> SplitDataset:
    return temporal_split(lastfm_dataset)


@pytest.fixture(scope="session")
def smoke_config() -> TSPPRConfig:
    """A TS-PPR configuration sized for test-suite training runs."""
    return TSPPRConfig(max_epochs=15_000, seed=5)


@pytest.fixture(scope="session")
def fitted_tsppr(gowalla_split: SplitDataset, smoke_config: TSPPRConfig) -> TSPPRRecommender:
    """One fitted TS-PPR shared by the model/evaluation tests."""
    return TSPPRRecommender(smoke_config).fit(gowalla_split)


@pytest.fixture()
def tiny_dataset() -> Dataset:
    """Four users with hand-written sequences over 6 items.

    Designed so windows, repeats, and features are checkable by hand:

    * user 0: ``0 1 0 2 0 1`` — heavy repeats of item 0;
    * user 1: ``3 4 3 4 3 4`` — strict alternation;
    * user 2: ``5 5 5 5 5 5`` — a single item;
    * user 3: ``0 1 2 3 4 5`` — all novel.
    """
    return Dataset.from_user_items(
        [
            [0, 1, 0, 2, 0, 1],
            [3, 4, 3, 4, 3, 4],
            [5, 5, 5, 5, 5, 5],
            [0, 1, 2, 3, 4, 5],
        ],
        n_items=6,
        name="tiny",
    )


@pytest.fixture()
def tiny_split(tiny_dataset: Dataset) -> SplitDataset:
    """Tiny dataset with a 50% split and no length filter."""
    return temporal_split(
        tiny_dataset, SplitConfig(train_fraction=0.5, min_train_length=1)
    )


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(99)
