"""Tests for repro.survival.cox — the from-scratch Cox PH estimator."""

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.exceptions import DataError, NotFittedError
from repro.survival.cox import CoxPHModel
from repro.survival.datasets import (
    DEFAULT_GAP,
    SurvivalData,
    build_return_time_data,
    return_covariates,
    weighted_average_gap,
)


def _exponential_cox_data(rng, n=600, beta=(0.8, -0.5), censor_rate=0.2):
    """Durations from an exponential PH model with known coefficients."""
    beta = np.asarray(beta)
    X = rng.normal(size=(n, beta.size))
    hazards = np.exp(X @ beta)
    durations = rng.exponential(1.0 / hazards)
    events = (rng.random(n) > censor_rate).astype(float)
    # Censored observations are observed for a shorter random time.
    durations = np.where(events > 0, durations, durations * rng.random(n))
    durations = np.maximum(durations, 1e-6)
    return durations, events, X


class TestCoxFit:
    def test_recovers_known_coefficients(self, rng):
        durations, events, X = _exponential_cox_data(rng)
        model = CoxPHModel(l2_penalty=0.0).fit(durations, events, X)
        assert model.coef_[0] == pytest.approx(0.8, abs=0.2)
        assert model.coef_[1] == pytest.approx(-0.5, abs=0.2)

    def test_handles_heavy_ties(self, rng):
        # Discrete durations produce massive ties (the RRC regime).
        durations, events, X = _exponential_cox_data(rng, n=400)
        durations = np.ceil(durations * 3)
        model = CoxPHModel().fit(durations, events, X)
        assert model.coef_[0] > 0
        assert model.coef_[1] < 0

    def test_null_covariate_gets_near_zero_weight(self, rng):
        n = 500
        X = rng.normal(size=(n, 1))
        durations = rng.exponential(1.0, size=n) + 1e-6
        events = np.ones(n)
        model = CoxPHModel(l2_penalty=0.0).fit(durations, events, X)
        assert abs(model.coef_[0]) < 0.1

    def test_concordance_above_chance(self, rng):
        durations, events, X = _exponential_cox_data(rng, n=300)
        model = CoxPHModel().fit(durations, events, X)
        assert model.concordance_index(durations, events, X) > 0.6

    def test_validation_errors(self, rng):
        X = rng.normal(size=(5, 2))
        good_durations = np.ones(5)
        good_events = np.ones(5)
        with pytest.raises(DataError, match="positive"):
            CoxPHModel().fit(np.zeros(5), good_events, X)
        with pytest.raises(DataError, match="0/1"):
            CoxPHModel().fit(good_durations, np.full(5, 2.0), X)
        with pytest.raises(DataError, match="uncensored"):
            CoxPHModel().fit(good_durations, np.zeros(5), X)
        with pytest.raises(DataError, match="agree"):
            CoxPHModel().fit(np.ones(4), good_events, X)
        with pytest.raises(DataError, match="2-D"):
            CoxPHModel().fit(good_durations, good_events, np.ones(5))
        with pytest.raises(DataError, match="zero"):
            CoxPHModel().fit(np.empty(0), np.empty(0), np.empty((0, 1)))

    def test_unfitted_raises(self):
        model = CoxPHModel()
        with pytest.raises(NotFittedError):
            model.predict_partial_hazard(np.zeros((1, 2)))


class TestCoxPrediction:
    @pytest.fixture(scope="class")
    def fitted(self):
        rng = np.random.default_rng(99)
        durations, events, X = _exponential_cox_data(rng)
        return CoxPHModel().fit(durations, events, X), X

    def test_baseline_cumhaz_monotone(self, fitted):
        model, _ = fitted
        assert np.all(np.diff(model.baseline_cumhaz_) > 0)

    def test_partial_hazard_monotone_in_risky_covariate(self, fitted):
        model, _ = fitted
        low = model.predict_partial_hazard(np.array([[-1.0, 0.0]]))
        high = model.predict_partial_hazard(np.array([[1.0, 0.0]]))
        assert high > low

    def test_survival_function_decreasing_in_time(self, fitted):
        model, _ = fitted
        times = np.array([0.5, 1.0, 2.0, 4.0])
        x = np.tile([[0.2, 0.1]], (4, 1))
        survival = model.survival_function(times, x)
        assert np.all(np.diff(survival) <= 0)
        assert np.all((0 <= survival) & (survival <= 1))

    def test_cumulative_hazard_scales_with_risk(self, fitted):
        model, _ = fitted
        times = np.array([1.0, 1.0])
        x = np.array([[0.0, 0.0], [1.0, 0.0]])
        hazard = model.cumulative_hazard(times, x)
        ratio = hazard[1] / hazard[0]
        expected = (
            model.predict_partial_hazard(np.array([[1.0, 0.0]]))[0]
            / model.predict_partial_hazard(np.array([[0.0, 0.0]]))[0]
        )
        assert ratio == pytest.approx(float(expected), rel=1e-9)

    def test_expected_return_time_shorter_for_risky(self, fitted):
        model, _ = fitted
        expected = model.expected_return_time(
            np.array([[1.0, 0.0], [-1.0, 0.0]])
        )
        assert expected[0] < expected[1]
        assert np.all(expected > 0)

    def test_expected_return_score_in_unit_interval(self, fitted):
        model, _ = fitted
        scores = model.expected_return_score(
            np.array([1.0, 5.0]), np.array([[0.0, 0.0], [0.5, -0.5]])
        )
        assert np.all((0 < scores) & (scores < 1))

    def test_pairing_validation(self, fitted):
        model, _ = fitted
        with pytest.raises(DataError, match="pair"):
            model.cumulative_hazard(np.ones(3), np.zeros((2, 2)))


class TestSurvivalDatasets:
    def test_weighted_average_gap_empty_default(self):
        assert weighted_average_gap([]) == DEFAULT_GAP

    def test_weighted_average_weights_recent_more(self):
        # Newest gap 10 vs oldest 1: the average must lean toward 10.
        assert weighted_average_gap([1.0, 10.0]) > 5.5
        assert weighted_average_gap([10.0, 1.0]) < 5.5

    def test_weighted_average_single(self):
        assert weighted_average_gap([7.0]) == pytest.approx(7.0)

    def test_return_covariates_validation(self):
        with pytest.raises(DataError):
            return_covariates(10.0, 0)
        with pytest.raises(DataError):
            return_covariates(0.0, 1)

    def test_build_return_time_data_counts(self):
        # One user: [0, 1, 0, 0] -> events: gap2 (0), gap1 (0);
        # censored: item 0 (1 step), item 1 (3 steps).
        dataset = Dataset.from_user_items([[0, 1, 0, 0]], n_items=2)
        data = build_return_time_data(dataset)
        assert len(data) == 4
        assert data.n_events == 2
        event_gaps = sorted(data.durations[data.events > 0].tolist())
        assert event_gaps == [1.0, 2.0]

    def test_build_respects_observation_cap(self, gowalla_dataset):
        full = build_return_time_data(gowalla_dataset)
        capped = build_return_time_data(
            gowalla_dataset, max_observations_per_user=5
        )
        assert len(capped) <= 5 * gowalla_dataset.n_users
        assert len(capped) < len(full)

    def test_no_intervals_raises(self):
        dataset = Dataset.from_user_items([[]], n_items=1)
        with pytest.raises(DataError, match="no return intervals"):
            build_return_time_data(dataset)

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(DataError):
            SurvivalData(np.ones(3), np.ones(2), np.ones((3, 2)))
