"""Tests for repro.data.streams — the incremental session tracker."""

import numpy as np
import pytest

from repro.config import WindowConfig
from repro.data.sequence import ConsumptionSequence
from repro.data.streams import SessionTracker
from repro.exceptions import DataError
from repro.features.vectorizer import BehavioralFeatureModel
from repro.windows.repeat import candidate_items, is_valid_target
from repro.windows.window import window_before

WINDOW = WindowConfig(window_size=10, min_gap=2)


class TestBasics:
    def test_initial_state(self):
        tracker = SessionTracker(0, WINDOW)
        assert tracker.t == 0
        assert tracker.window_length() == 0
        assert tracker.candidates() == []
        assert tracker.gap(5) is None
        assert tracker.familiarity(5) == 0.0

    def test_validation(self):
        with pytest.raises(DataError):
            SessionTracker(-1)
        tracker = SessionTracker(0)
        with pytest.raises(DataError):
            tracker.consume(-3)
        tracker.consume(1)
        with pytest.raises(DataError):
            tracker.recency(1, kind="linear")

    def test_window_eviction(self):
        tracker = SessionTracker(0, WindowConfig(window_size=3, min_gap=1))
        tracker.consume_all([1, 2, 3, 4])
        assert tracker.window_items() == [2, 3, 4]
        assert tracker.count_in_window(1) == 0
        assert tracker.count_in_window(4) == 1
        # Gap still answers from full history, beyond the window.
        assert tracker.gap(1) == 4

    def test_repr(self):
        tracker = SessionTracker(3, WINDOW)
        assert "user=3" in repr(tracker)


class TestAgreementWithBatch:
    """The tracker must agree exactly with the batch implementations."""

    @pytest.fixture()
    def stream(self, rng):
        return rng.integers(0, 8, size=120).tolist()

    def test_window_and_counts(self, stream):
        tracker = SessionTracker(0, WINDOW)
        sequence = ConsumptionSequence(0, stream)
        for t, item in enumerate(stream):
            view = window_before(sequence, t, WINDOW.window_size)
            assert tracker.window_items() == view.items.tolist()
            for probe in range(8):
                assert tracker.count_in_window(probe) == view.count(probe)
                assert tracker.familiarity(probe) == pytest.approx(
                    view.familiarity(probe)
                )
            tracker.consume(item)

    def test_candidates_match_batch(self, stream):
        tracker = SessionTracker(0, WINDOW)
        sequence = ConsumptionSequence(0, stream)
        for t, item in enumerate(stream):
            assert tracker.candidates() == candidate_items(
                sequence, t, WINDOW.window_size, WINDOW.min_gap
            )
            tracker.consume(item)

    def test_repeat_flags_match_batch(self, stream):
        tracker = SessionTracker(0, WINDOW)
        sequence = ConsumptionSequence(0, stream)
        for t, item in enumerate(stream):
            if t > 0:
                assert tracker.is_valid_target(item) == is_valid_target(
                    sequence, t, WINDOW.window_size, WINDOW.min_gap
                )
            tracker.consume(item)

    def test_recency_matches_batch_feature(self, stream, gowalla_dataset):
        feature_model = BehavioralFeatureModel().fit(gowalla_dataset, WINDOW)
        recency = feature_model.extractor("recency")
        tracker = SessionTracker(0, WINDOW)
        sequence = ConsumptionSequence(0, stream)
        for t, item in enumerate(stream):
            view = window_before(sequence, t, WINDOW.window_size)
            for probe in range(8):
                assert tracker.recency(probe) == pytest.approx(
                    recency.value(sequence, probe, t, view)
                )
            tracker.consume(item)

    def test_feature_vector_matches_batch(self, gowalla_dataset, rng):
        feature_model = BehavioralFeatureModel().fit(gowalla_dataset, WINDOW)
        stream = gowalla_dataset.sequence(0).items[:80].tolist()
        tracker = SessionTracker(0, WINDOW)
        sequence = ConsumptionSequence(0, stream)
        for t, item in enumerate(stream):
            if t > 5:
                probes = list(dict.fromkeys(stream[:t]))[:5]
                for probe in probes:
                    streamed = tracker.feature_vector(probe, feature_model)
                    batch = feature_model.vector(sequence, probe, t)
                    assert np.allclose(streamed, batch), (t, probe)
            tracker.consume(item)
