"""Tests for repro.analysis — profiles, decomposition, lifetimes."""

import pytest

from repro.analysis.decomposition import decompose_repeats
from repro.analysis.lifetimes import item_lifetimes, lifetime_summary
from repro.analysis.profiles import dataset_profile_summary, user_profiles
from repro.config import WindowConfig
from repro.data.dataset import Dataset
from repro.exceptions import DataError


class TestUserProfiles:
    def test_hand_computed_profile(self):
        dataset = Dataset.from_user_items([[0, 1, 0, 2, 0, 1]], n_items=3)
        (profile,) = user_profiles(dataset)
        assert profile.n_consumptions == 6
        assert profile.n_distinct_items == 3
        assert profile.repeat_ratio == pytest.approx(3 / 5)
        # Gaps: 0@(0->2)=2, 0@(2->4)=2, 1@(1->5)=4.
        assert profile.mean_repeat_gap == pytest.approx(8 / 3)
        assert profile.median_repeat_gap == pytest.approx(2.0)
        # Item 0 consumed 3 of 6 times.
        assert profile.top_item_share == pytest.approx(0.5)

    def test_all_novel_user(self):
        dataset = Dataset.from_user_items([[0, 1, 2, 3]], n_items=4)
        (profile,) = user_profiles(dataset)
        assert profile.repeat_ratio == 0.0
        assert profile.mean_repeat_gap == 0.0

    def test_single_item_user(self):
        dataset = Dataset.from_user_items([[5] * 10], n_items=6)
        (profile,) = user_profiles(dataset)
        assert profile.repeat_ratio == 1.0
        assert profile.top_item_share == 1.0
        assert profile.novelty_half_life == 0

    def test_novelty_half_life(self):
        # 4 distinct items; half (the 2nd) first seen at position 1.
        dataset = Dataset.from_user_items([[0, 1, 1, 1, 2, 3]], n_items=4)
        (profile,) = user_profiles(dataset)
        assert profile.novelty_half_life == 1

    def test_summary_means(self, gowalla_dataset):
        summary = dataset_profile_summary(gowalla_dataset)
        assert 0.0 < summary["mean_repeat_ratio"] < 1.0
        assert summary["mean_distinct_items"] > 1
        assert summary["mean_top_item_share"] <= 1.0

    def test_summary_empty_dataset_raises(self):
        with pytest.raises(DataError):
            dataset_profile_summary(Dataset.from_user_items([], n_items=0))


class TestDecomposition:
    def test_shares_sum_to_one(self, gowalla_dataset):
        decomposition = decompose_repeats(gowalla_dataset)
        assert decomposition.n_events > 0
        total = (
            decomposition.quality_share
            + decomposition.recency_share
            + decomposition.both_share
            + decomposition.neither_share
        )
        assert total == pytest.approx(1.0)

    def test_empty_dataset(self):
        dataset = Dataset.from_user_items([[0, 1, 2]], n_items=3)
        decomposition = decompose_repeats(dataset)
        assert decomposition.n_events == 0

    def test_quality_driven_sequence(self):
        # Item 0 returns every third step among otherwise one-off items,
        # so each qualifying repeat picks the max-count (and most recent
        # eligible) candidate: quality- or both-driven events dominate.
        window = WindowConfig(window_size=10, min_gap=2)
        items = [0, 1, 2]
        fresh = 3
        for _ in range(5):
            items += [0, fresh, fresh + 1]
            fresh += 2
        dataset = Dataset.from_user_items([items], n_items=fresh)
        decomposition = decompose_repeats(dataset, window)
        assert decomposition.n_events > 0
        assert decomposition.quality_share + decomposition.both_share >= 0.5


class TestLifetimes:
    def test_hand_computed(self):
        dataset = Dataset.from_user_items([[3, 1, 3, 2, 3]], n_items=4)
        lifetimes = item_lifetimes(dataset)
        assert len(lifetimes) == 1  # only item 3 has >= 2 consumptions
        (lifetime,) = lifetimes
        assert lifetime.item == 3
        assert lifetime.first_position == 0
        assert lifetime.last_position == 4
        assert lifetime.span == 5
        assert lifetime.n_consumptions == 3
        assert lifetime.intensity == pytest.approx(0.6)

    def test_min_consumptions_filter(self):
        dataset = Dataset.from_user_items([[0, 0, 1, 1, 1]], n_items=2)
        assert len(item_lifetimes(dataset, min_consumptions=3)) == 1
        assert len(item_lifetimes(dataset, min_consumptions=2)) == 2
        with pytest.raises(ValueError):
            item_lifetimes(dataset, min_consumptions=0)

    def test_summary(self, gowalla_dataset):
        summary = lifetime_summary(gowalla_dataset)
        assert summary["mean_span"] > 1
        assert 0.0 < summary["mean_intensity"] <= 1.0

    def test_summary_no_lifetimes(self):
        dataset = Dataset.from_user_items([[0, 1, 2]], n_items=3)
        summary = lifetime_summary(dataset)
        assert summary["mean_span"] == 0.0
