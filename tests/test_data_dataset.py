"""Tests for repro.data.dataset."""

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.sequence import ConsumptionSequence
from repro.data.vocab import Vocabulary
from repro.exceptions import DataError


class TestConstruction:
    def test_from_user_items_infers_item_count(self):
        dataset = Dataset.from_user_items([[0, 2], [1]])
        assert dataset.n_users == 2
        assert dataset.n_items == 3

    def test_rejects_misordered_users(self):
        sequences = [ConsumptionSequence(1, [0])]
        with pytest.raises(DataError, match="dense and ordered"):
            Dataset(sequences, Vocabulary.identity(1))

    def test_rejects_items_outside_vocab(self):
        sequences = [ConsumptionSequence(0, [5])]
        with pytest.raises(DataError, match="outside vocabulary"):
            Dataset(sequences, Vocabulary.identity(3))

    def test_rejects_wrong_user_vocab_size(self):
        sequences = [ConsumptionSequence(0, [0])]
        with pytest.raises(DataError, match="does not match"):
            Dataset(sequences, Vocabulary.identity(1), Vocabulary.identity(5))

    def test_sequence_access_bounds(self, tiny_dataset):
        with pytest.raises(DataError, match="out of range"):
            tiny_dataset.sequence(99)


class TestStatistics:
    def test_n_consumptions(self, tiny_dataset):
        assert tiny_dataset.n_consumptions() == 24

    def test_item_frequencies(self, tiny_dataset):
        freqs = tiny_dataset.item_frequencies()
        # item 0: three times (user 0) + once (user 3) = 4
        assert freqs[0] == 4
        # item 5: six times (user 2) + once (user 3) = 7
        assert freqs[5] == 7
        assert freqs.sum() == tiny_dataset.n_consumptions()

    def test_item_frequencies_cached_and_readonly(self, tiny_dataset):
        first = tiny_dataset.item_frequencies()
        assert first is tiny_dataset.item_frequencies()
        with pytest.raises(ValueError):
            first[0] = 123

    def test_stats_repeat_fraction(self, tiny_dataset):
        stats = tiny_dataset.stats(window_size=100)
        # user 0: repeats at t=2,4,5 (3 of 5); user 1: t=2..5 (4 of 5);
        # user 2: t=1..5 (5 of 5); user 3: none (0 of 5).
        assert stats.repeat_fraction == pytest.approx(12 / 20)

    def test_stats_window_size_matters(self):
        dataset = Dataset.from_user_items([[0, 1, 1, 0]], n_items=2)
        wide = dataset.stats(window_size=10).repeat_fraction
        narrow = dataset.stats(window_size=1).repeat_fraction
        # With window 1, only the immediate repetition at t=2 counts.
        assert wide == pytest.approx(2 / 3)
        assert narrow == pytest.approx(1 / 3)

    def test_stats_as_row(self, tiny_dataset):
        row = tiny_dataset.stats().as_row()
        assert row["Users"] == 4
        assert row["Consumption"] == 24


class TestSubsetUsers:
    def test_reindexes_users_densely(self, tiny_dataset):
        subset = tiny_dataset.subset_users([2, 0])
        assert subset.n_users == 2
        assert list(subset.sequence(0)) == [5, 5, 5, 5, 5, 5]
        assert list(subset.sequence(1)) == [0, 1, 0, 2, 0, 1]

    def test_preserves_item_vocab(self, tiny_dataset):
        subset = tiny_dataset.subset_users([1])
        assert subset.n_items == tiny_dataset.n_items

    def test_keeps_original_user_ids(self, tiny_dataset):
        subset = tiny_dataset.subset_users([3])
        assert subset.user_vocab.id_of(0) == 3

    def test_empty_subset(self, tiny_dataset):
        subset = tiny_dataset.subset_users([])
        assert subset.n_users == 0


class TestSequencesRemoved:
    def test_deprecated_sequences_property_is_gone(self, tiny_dataset):
        """The ad-hoc mutable history list completed its deprecation.

        Histories are reachable only through the supported surfaces —
        iteration, ``sequence(user)``, ``history_store()`` — so every
        consumer shares one representation.
        """
        assert not hasattr(tiny_dataset, "sequences")
        with pytest.raises(AttributeError):
            tiny_dataset.sequences
