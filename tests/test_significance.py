"""Tests for repro.evaluation.significance."""

import numpy as np
import pytest

from repro.evaluation.significance import (
    collect_hit_vectors,
    paired_bootstrap,
    permutation_test,
)
from repro.exceptions import EvaluationError
from repro.models.pop import PopRecommender
from repro.models.random_rec import RandomRecommender


class TestPairedBootstrap:
    def test_clear_winner_is_significant(self, rng):
        n = 400
        hits_b = (rng.random(n) < 0.3).astype(float)
        hits_a = np.minimum(hits_b + (rng.random(n) < 0.4), 1.0)
        comparison = paired_bootstrap(hits_a, hits_b, random_state=1)
        assert comparison.observed_difference > 0
        assert comparison.significant
        assert comparison.win_probability > 0.99
        assert comparison.ci_low <= comparison.observed_difference <= comparison.ci_high

    def test_identical_models_not_significant(self, rng):
        hits = (rng.random(300) < 0.5).astype(float)
        comparison = paired_bootstrap(hits, hits, random_state=2)
        assert comparison.observed_difference == 0.0
        assert not comparison.significant

    def test_validation(self):
        with pytest.raises(EvaluationError):
            paired_bootstrap(np.ones(3), np.ones(4))
        with pytest.raises(EvaluationError):
            paired_bootstrap(np.empty(0), np.empty(0))
        with pytest.raises(EvaluationError):
            paired_bootstrap(np.ones(3), np.ones(3), confidence=1.5)
        with pytest.raises(EvaluationError):
            paired_bootstrap(np.ones(3), np.ones(3), n_resamples=0)

    def test_deterministic_given_seed(self, rng):
        a = (rng.random(100) < 0.4).astype(float)
        b = (rng.random(100) < 0.4).astype(float)
        first = paired_bootstrap(a, b, random_state=5)
        second = paired_bootstrap(a, b, random_state=5)
        assert first == second


class TestPermutationTest:
    def test_null_gives_large_p(self, rng):
        a = (rng.random(300) < 0.5).astype(float)
        p = permutation_test(a, a, random_state=3)
        assert p > 0.9  # zero difference can never look extreme

    def test_strong_effect_gives_small_p(self, rng):
        n = 300
        b = (rng.random(n) < 0.2).astype(float)
        a = np.minimum(b + (rng.random(n) < 0.5), 1.0)
        p = permutation_test(a, b, random_state=4)
        assert p < 0.01

    def test_p_value_in_unit_interval(self, rng):
        a = (rng.random(50) < 0.5).astype(float)
        b = (rng.random(50) < 0.5).astype(float)
        p = permutation_test(a, b, random_state=6)
        assert 0.0 < p <= 1.0

    def test_validation(self):
        with pytest.raises(EvaluationError):
            permutation_test(np.ones(2), np.ones(3))
        with pytest.raises(EvaluationError):
            permutation_test(np.empty(0), np.empty(0))
        with pytest.raises(EvaluationError):
            permutation_test(np.ones(3), np.ones(3), n_permutations=0)


class TestCollectHitVectors:
    def test_paired_shape_and_values(self, gowalla_split):
        models = [
            PopRecommender().fit(gowalla_split),
            RandomRecommender(random_state=0).fit(gowalla_split),
        ]
        matrix = collect_hit_vectors(models, gowalla_split, top_n=5)
        assert matrix.shape[0] == 2
        assert matrix.shape[1] > 0
        assert set(np.unique(matrix)) <= {0.0, 1.0}

    def test_pop_beats_random_significantly(self, gowalla_split):
        models = [
            PopRecommender().fit(gowalla_split),
            RandomRecommender(random_state=0).fit(gowalla_split),
        ]
        matrix = collect_hit_vectors(models, gowalla_split, top_n=5)
        comparison = paired_bootstrap(matrix[0], matrix[1], random_state=7)
        assert comparison.observed_difference > 0

    def test_empty_model_list_rejected(self, gowalla_split):
        with pytest.raises(EvaluationError):
            collect_hit_vectors([], gowalla_split)
