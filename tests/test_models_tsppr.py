"""Tests for repro.models.tsppr — the core model."""

import numpy as np
import pytest

from repro.config import TSPPRConfig, WindowConfig
from repro.evaluation.protocol import evaluate_recommender
from repro.exceptions import NotFittedError
from repro.models.random_rec import RandomRecommender
from repro.models.tsppr import TSPPRRecommender
from repro.windows.window import window_before


class TestFitting:
    def test_shapes_after_fit(self, fitted_tsppr, gowalla_split, smoke_config):
        K, F = smoke_config.n_factors, smoke_config.n_features
        assert fitted_tsppr.user_factors_.shape == (gowalla_split.n_users, K)
        assert fitted_tsppr.item_factors_.shape == (gowalla_split.n_items, K)
        assert fitted_tsppr.mappings_.shape == (gowalla_split.n_users, K, F)
        assert fitted_tsppr.n_quadruples_ > 0

    def test_sgd_result_recorded(self, fitted_tsppr):
        result = fitted_tsppr.sgd_result_
        assert result is not None
        assert result.n_updates > 0
        assert len(result.margin_history) >= 2

    def test_margin_improves_during_training(self, fitted_tsppr):
        history = fitted_tsppr.sgd_result_.margin_history
        assert history[-1][1] > history[0][1]

    def test_deterministic_given_seed(self, gowalla_split):
        config = TSPPRConfig(max_epochs=2000, seed=42)
        a = TSPPRRecommender(config).fit(gowalla_split)
        b = TSPPRRecommender(config).fit(gowalla_split)
        assert np.allclose(a.user_factors_, b.user_factors_)
        assert np.allclose(a.mappings_, b.mappings_)

    def test_shared_mapping_shape(self, gowalla_split):
        config = TSPPRConfig(max_epochs=2000, seed=1, share_mapping=True)
        model = TSPPRRecommender(config).fit(gowalla_split)
        assert model.mappings_.shape == (config.n_factors, config.n_features)

    def test_feature_subset_training(self, gowalla_split):
        config = TSPPRConfig(
            max_epochs=2000, seed=1,
            feature_names=("recency", "dynamic_familiarity"),
        )
        model = TSPPRRecommender(config).fit(gowalla_split)
        assert model.mappings_.shape[-1] == 2

    def test_no_static_term_skips_item_updates(self, gowalla_split):
        config = TSPPRConfig(max_epochs=3000, seed=1, use_static_term=False)
        model = TSPPRRecommender(config).fit(gowalla_split)
        # Item factors stay at their Gaussian init: no update touches them.
        assert model.item_factors_ is not None
        # Retrain with the same seed but minimal updates to compare inits.
        config_ref = config.with_overrides(max_epochs=1)
        reference = TSPPRRecommender(config_ref).fit(gowalla_split)
        assert np.allclose(model.item_factors_, reference.item_factors_)


class TestScoring:
    def test_score_before_fit_raises(self, gowalla_split):
        model = TSPPRRecommender()
        with pytest.raises(NotFittedError):
            model.score(gowalla_split.full_sequence(0), [0], 5)

    def test_score_matches_eq5(self, fitted_tsppr, gowalla_split):
        """Scores must equal uᵀv + uᵀ A_u f_uvt computed by hand."""
        sequence = gowalla_split.full_sequence(0)
        t = gowalla_split.train_boundary(0) + 5
        candidates = sorted(set(sequence.items[:t].tolist()))[:5]
        scores = fitted_tsppr.score(sequence, candidates, t)

        u = fitted_tsppr.user_factors_[0]
        A_u = fitted_tsppr.mappings_[0]
        window = window_before(sequence, t, 100)
        for index, item in enumerate(candidates):
            f = fitted_tsppr.feature_model.vector(sequence, item, t, window)
            expected = u @ fitted_tsppr.item_factors_[item] + u @ (A_u @ f)
            assert scores[index] == pytest.approx(expected, rel=1e-9)

    def test_preference_matches_score(self, fitted_tsppr, gowalla_split):
        sequence = gowalla_split.full_sequence(0)
        t = gowalla_split.train_boundary(0) + 3
        item = int(sequence[t - 20])
        assert fitted_tsppr.preference(0, item, sequence, t) == pytest.approx(
            float(fitted_tsppr.score(sequence, [item], t)[0])
        )

    def test_scores_finite(self, fitted_tsppr, gowalla_split):
        sequence = gowalla_split.full_sequence(1)
        t = gowalla_split.train_boundary(1) + 1
        candidates = sorted(set(sequence.items[:t].tolist()))[:20]
        assert np.all(np.isfinite(fitted_tsppr.score(sequence, candidates, t)))


class TestEndToEnd:
    def test_beats_random(self, fitted_tsppr, gowalla_split):
        ours = evaluate_recommender(fitted_tsppr, gowalla_split)
        random_result = evaluate_recommender(
            RandomRecommender(random_state=0).fit(gowalla_split), gowalla_split
        )
        assert ours.maap[10] > random_result.maap[10]
        assert ours.maap[5] > random_result.maap[5]

    def test_custom_window_config(self, gowalla_split):
        window = WindowConfig(window_size=50, min_gap=5)
        config = TSPPRConfig(max_epochs=2000, seed=2)
        model = TSPPRRecommender(config).fit(gowalla_split, window)
        assert model.window_config.window_size == 50
        result = evaluate_recommender(model, gowalla_split)
        assert 0.0 <= result.maap[10] <= 1.0
