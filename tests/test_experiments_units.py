"""Unit tests for experiment-module internals (no full runs)."""

import numpy as np
import pytest

from repro.config import WindowConfig
from repro.evaluation.metrics import AccuracyResult
from repro.experiments.fig4_distributions import FEATURE_CODES, rank_histograms
from repro.experiments.fig7_feature_importance import ablation_variants
from repro.experiments.table3_improvement import improvement_cell


def _accuracy(maap, miap):
    return AccuracyResult(
        top_ns=(1, 5, 10),
        maap={1: maap, 5: maap, 10: maap},
        miap={1: miap, 5: miap, 10: miap},
        n_users_evaluated=3,
        n_targets_total=30,
    )


class TestImprovementCell:
    def test_positive_improvement_formats_percent(self):
        results = {
            "Random": _accuracy(0.1, 0.1),
            "Pop": _accuracy(0.2, 0.2),
            "Recency": _accuracy(0.15, 0.15),
            "FPMC": _accuracy(0.1, 0.1),
            "Survival": _accuracy(0.1, 0.1),
            "DYRC": _accuracy(0.18, 0.18),
            "TS-PPR": _accuracy(0.3, 0.25),
        }
        assert improvement_cell(results, "MaAP", 10) == "50%"
        assert improvement_cell(results, "MiAP", 10) == "25%"

    def test_loss_renders_backslash(self):
        results = {
            name: _accuracy(0.2, 0.2)
            for name in (
                "Random", "Pop", "Recency", "FPMC", "Survival", "DYRC",
            )
        }
        results["TS-PPR"] = _accuracy(0.15, 0.2)
        assert improvement_cell(results, "MaAP", 5) == "\\"
        # An exact tie is also "not better".
        assert improvement_cell(results, "MiAP", 5) == "\\"


class TestAblationVariants:
    def test_five_variants(self):
        variants = ablation_variants()
        assert len(variants) == 5
        labels = [label for label, _ in variants]
        assert labels == ["All", "-IP", "-IR", "-RE", "-DF"]

    def test_each_removal_drops_exactly_one(self):
        variants = dict(ablation_variants())
        assert len(variants["All"]) == 4
        assert "item_quality" not in variants["-IP"]
        assert "item_reconsumption_ratio" not in variants["-IR"]
        assert "recency" not in variants["-RE"]
        assert "dynamic_familiarity" not in variants["-DF"]
        for label in ("-IP", "-IR", "-RE", "-DF"):
            assert len(variants[label]) == 3


class TestRankHistograms:
    def test_counts_and_truth_rank(self, gowalla_split):
        window = WindowConfig(window_size=30, min_gap=3)
        histograms = rank_histograms(gowalla_split, window, max_rank=10)
        assert set(histograms) == set(FEATURE_CODES)
        totals = {name: h.sum() for name, h in histograms.items()}
        # Every feature histograms the same set of repeat events.
        assert len(set(totals.values())) == 1
        assert list(totals.values())[0] > 0
        for histogram in histograms.values():
            assert histogram.shape == (10,)
            assert np.all(histogram >= 0)

    def test_rank_folding(self, gowalla_split):
        window = WindowConfig(window_size=30, min_gap=3)
        small = rank_histograms(gowalla_split, window, max_rank=3)
        large = rank_histograms(gowalla_split, window, max_rank=10)
        for name in small:
            assert small[name].sum() == large[name].sum()
            # Mass beyond rank 3 folds into the last bin.
            assert small[name][2] >= large[name][2]
