"""Tests for repro.io.model_store — model persistence round trips."""

import json

import numpy as np
import pytest

from repro.config import TSPPRConfig
from repro.exceptions import ModelError, NotFittedError
from repro.io.model_store import load_model, save_model
from repro.models.fpmc import FPMCRecommender
from repro.models.pop import PopRecommender
from repro.models.ppr import PPRRecommender
from repro.models.random_rec import RandomRecommender
from repro.models.tsppr import TSPPRRecommender
from repro.novel.models import NovelTSPPRRecommender

SMOKE = TSPPRConfig(max_epochs=4000, seed=8)


def _scores(model, split):
    sequence = split.full_sequence(0)
    t = split.train_boundary(0) + 2
    candidates = sorted(set(sequence.items[:t].tolist()))[:8]
    return model.score(sequence, candidates, t)


class TestRoundTrips:
    def test_tsppr_round_trip(self, gowalla_split, tmp_path):
        model = TSPPRRecommender(SMOKE).fit(gowalla_split)
        save_model(model, tmp_path / "tsppr")
        loaded = load_model(tmp_path / "tsppr", split=gowalla_split)
        assert isinstance(loaded, TSPPRRecommender)
        assert loaded.config == model.config
        assert np.allclose(_scores(loaded, gowalla_split),
                           _scores(model, gowalla_split))

    def test_novel_tsppr_round_trip(self, gowalla_split, tmp_path):
        model = NovelTSPPRRecommender(SMOKE).fit(gowalla_split)
        save_model(model, tmp_path / "novel")
        loaded = load_model(tmp_path / "novel", split=gowalla_split)
        assert isinstance(loaded, NovelTSPPRRecommender)
        assert loaded.popularity_biased_negatives == model.popularity_biased_negatives
        assert np.allclose(_scores(loaded, gowalla_split),
                           _scores(model, gowalla_split))

    def test_ppr_round_trip(self, gowalla_split, tmp_path):
        model = PPRRecommender(SMOKE).fit(gowalla_split)
        save_model(model, tmp_path / "ppr")
        loaded = load_model(tmp_path / "ppr")
        assert np.allclose(_scores(loaded, gowalla_split),
                           _scores(model, gowalla_split))

    def test_fpmc_round_trip(self, gowalla_split, tmp_path):
        model = FPMCRecommender(SMOKE, use_user_term=True).fit(gowalla_split)
        save_model(model, tmp_path / "fpmc")
        loaded = load_model(tmp_path / "fpmc")
        assert loaded.use_user_term is True
        assert np.allclose(_scores(loaded, gowalla_split),
                           _scores(model, gowalla_split))

    def test_pop_round_trip(self, gowalla_split, tmp_path):
        model = PopRecommender().fit(gowalla_split)
        save_model(model, tmp_path / "pop")
        loaded = load_model(tmp_path / "pop")
        assert np.allclose(_scores(loaded, gowalla_split),
                           _scores(model, gowalla_split))

    def test_window_config_preserved(self, gowalla_split, tmp_path):
        from repro.config import WindowConfig

        model = PopRecommender().fit(
            gowalla_split, WindowConfig(window_size=50, min_gap=7)
        )
        save_model(model, tmp_path / "pop")
        loaded = load_model(tmp_path / "pop")
        assert loaded.window_config.window_size == 50
        assert loaded.window_config.min_gap == 7


class TestErrors:
    def test_unfitted_model_rejected(self, tmp_path):
        with pytest.raises(NotFittedError):
            save_model(TSPPRRecommender(SMOKE), tmp_path / "x")

    def test_unsavable_class_rejected(self, gowalla_split, tmp_path):
        model = RandomRecommender().fit(gowalla_split)
        with pytest.raises(ModelError, match="persistence layout"):
            save_model(model, tmp_path / "x")

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(ModelError, match="manifest"):
            load_model(tmp_path)

    def test_tsppr_requires_split_on_load(self, gowalla_split, tmp_path):
        model = TSPPRRecommender(SMOKE).fit(gowalla_split)
        save_model(model, tmp_path / "tsppr")
        with pytest.raises(ModelError, match="training split"):
            load_model(tmp_path / "tsppr")

    def test_bad_format_version(self, gowalla_split, tmp_path):
        model = PopRecommender().fit(gowalla_split)
        directory = save_model(model, tmp_path / "pop")
        manifest = json.loads((directory / "manifest.json").read_text())
        manifest["format_version"] = 999
        (directory / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ModelError, match="format"):
            load_model(directory)

    def test_unknown_class_in_manifest(self, gowalla_split, tmp_path):
        model = PopRecommender().fit(gowalla_split)
        directory = save_model(model, tmp_path / "pop")
        manifest = json.loads((directory / "manifest.json").read_text())
        manifest["model_class"] = "MysteryModel"
        (directory / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ModelError, match="unknown model class"):
            load_model(directory)


class TestCorruptionDetection:
    def _saved_pop(self, gowalla_split, tmp_path):
        model = PopRecommender().fit(gowalla_split)
        return save_model(model, tmp_path / "pop")

    def test_corrupt_arrays_detected_by_checksum(self, gowalla_split, tmp_path):
        directory = self._saved_pop(gowalla_split, tmp_path)
        npz = directory / "arrays.npz"
        npz.write_bytes(npz.read_bytes()[:-1] + b"X")
        with pytest.raises(ModelError, match="checksum"):
            load_model(directory)

    def test_truncated_arrays_detected(self, gowalla_split, tmp_path):
        directory = self._saved_pop(gowalla_split, tmp_path)
        npz = directory / "arrays.npz"
        npz.write_bytes(npz.read_bytes()[:-40])
        with pytest.raises(ModelError, match="checksum"):
            load_model(directory)

    def test_corrupt_manifest_json(self, gowalla_split, tmp_path):
        directory = self._saved_pop(gowalla_split, tmp_path)
        (directory / "manifest.json").write_text('{"format_version": 2, ')
        with pytest.raises(ModelError, match="corrupt manifest"):
            load_model(directory)

    def test_missing_arrays_file(self, gowalla_split, tmp_path):
        directory = self._saved_pop(gowalla_split, tmp_path)
        (directory / "arrays.npz").unlink()
        with pytest.raises(ModelError, match="arrays"):
            load_model(directory)

    def test_save_leaves_no_temp_files(self, gowalla_split, tmp_path):
        directory = self._saved_pop(gowalla_split, tmp_path)
        litter = [p for p in directory.iterdir() if p.suffix == ".tmp"]
        assert litter == []
