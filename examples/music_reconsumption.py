#!/usr/bin/env python
"""Music re-listening: raw event log → STREC switch → TS-PPR pipeline.

The scenario from the paper's Section 5.7: a music service logs raw
listens (some shorter than 30 seconds — dislikes), and wants to surface
"play it again" recommendations only when the user is about to repeat.

1. write a raw Last.fm-style event log with play durations,
2. load it back with the paper's 30-second dislike filter,
3. train the STREC repeat/novel switch (L1-logistic on window features),
4. train TS-PPR for the repeat branch,
5. walk one user's test timeline: at each step, ask STREC whether a
   repeat is coming; when it says yes, show TS-PPR's top-5.

Run: ``python examples/music_reconsumption.py``
"""

import tempfile
from pathlib import Path

from repro import (
    STRECClassifier,
    TSPPRRecommender,
    evaluate_recommender,
    generate_lastfm,
    lastfm_default_config,
    load_event_log,
    temporal_split,
)
from repro.data.loaders import MIN_LISTEN_SECONDS
from repro.synth.lastfm import write_lastfm_event_log
from repro.windows.repeat import candidate_items, is_valid_target


def main() -> None:
    print("1) Writing a raw listening log with sub-30s skips ...")
    source = generate_lastfm(random_state=11, user_factor=0.25)
    log_path = Path(tempfile.mkdtemp()) / "listens.tsv"
    n_rows = write_lastfm_event_log(log_path, source, skip_fraction=0.1,
                                    random_state=13)
    print(f"   {n_rows} raw rows written to {log_path}")

    print("2) Loading with the paper's 30-second dislike filter ...")
    dataset = load_event_log(log_path, name="Lastfm-like",
                             min_duration=MIN_LISTEN_SECONDS)
    print(f"   {dataset.n_consumptions()} listens kept "
          f"({n_rows - dataset.n_consumptions()} dislikes dropped)")

    split = temporal_split(dataset)
    print(f"   {split.n_users} listeners pass the |W|=100 filter")

    print("3) Training the STREC repeat/novel switch ...")
    strec = STRECClassifier().fit(split)
    switch = strec.evaluate(split)
    print(f"   switch accuracy {switch.accuracy:.3f} "
          f"(base repeat rate {switch.repeat_base_rate:.3f})")
    print(f"   Lasso weights over window features: "
          f"{[round(float(w), 3) for w in strec.coefficients]}")

    print("4) Training TS-PPR for the repeat branch ...")
    model = TSPPRRecommender(
        lastfm_default_config(max_epochs=100_000, seed=2)
    ).fit(split)
    unconditional = evaluate_recommender(model, split)
    print(f"   unconditional MaAP@10 = {unconditional.maap[10]:.3f}")

    print("5) Walking user 0's test timeline (first 3 predicted repeats):")
    sequence = split.full_sequence(0)
    window = model.window_config
    shown = 0
    for t in range(split.train_boundary(0), len(sequence)):
        if not strec.predict_position(sequence, t):
            continue  # novel-item recommender would take over here
        candidates = candidate_items(
            sequence, t, window.window_size, window.min_gap
        )
        if not candidates:
            continue
        top5 = model.recommend(sequence, candidates, t, 5)
        truth = int(sequence[t])
        actually_repeat = is_valid_target(
            sequence, t, window.window_size, window.min_gap
        )
        hit = "HIT " if truth in top5 else ("miss" if actually_repeat else "n/a ")
        print(f"   t={t}: play-again suggestions {top5} "
              f"| actually played {truth} [{hit}]")
        shown += 1
        if shown == 3:
            break


if __name__ == "__main__":
    main()
