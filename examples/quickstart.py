#!/usr/bin/env python
"""Quickstart: train TS-PPR on synthetic check-in data and recommend.

Walks the paper's whole pipeline in ~30 seconds:

1. generate a Gowalla-like check-in dataset,
2. apply the 70/30 per-user temporal split (with the |W| filter),
3. fit TS-PPR with the Table 4 defaults,
4. evaluate MaAP/MiAP against the Pop and Recency baselines,
5. produce a live recommendation for one user.

Run: ``python examples/quickstart.py``
"""

from repro import (
    PopRecommender,
    RecencyRecommender,
    TSPPRRecommender,
    evaluate_recommender,
    generate_gowalla,
    gowalla_default_config,
    temporal_split,
)
from repro.windows.repeat import candidate_items


def main() -> None:
    print("1) Generating a Gowalla-like check-in dataset ...")
    dataset = generate_gowalla(random_state=7, user_factor=0.3)
    stats = dataset.stats()
    print(f"   {stats.n_users} users, {stats.n_consumptions} check-ins, "
          f"window-repeat fraction {stats.repeat_fraction:.2f}")

    print("2) Temporal 70/30 split with the paper's user filter ...")
    split = temporal_split(dataset)
    print(f"   {split.n_users} users kept, "
          f"{split.n_train_consumptions()} train / "
          f"{split.n_test_consumptions()} test events")

    print("3) Fitting TS-PPR (Table 4 defaults, reduced epoch budget) ...")
    config = gowalla_default_config(max_epochs=100_000, seed=1)
    model = TSPPRRecommender(config).fit(split)
    assert model.sgd_result_ is not None
    print(f"   trained on |D| = {model.n_quadruples_} quadruples, "
          f"{model.sgd_result_.n_updates} SGD updates, "
          f"final margin r̃ = {model.sgd_result_.final_margin:.3f}")

    print("4) Evaluating against baselines ...")
    rows = []
    for candidate in (model, PopRecommender().fit(split),
                      RecencyRecommender().fit(split)):
        result = evaluate_recommender(candidate, split)
        rows.append((candidate.name, result))
        print(f"   {candidate.name:8s} "
              + "  ".join(f"MaAP@{n}={result.maap[n]:.3f}" for n in (1, 5, 10)))
    best = max(rows, key=lambda row: row[1].maap[5])
    print(f"   best at Top-5: {best[0]}")

    print("5) Live recommendation for user 0 at the end of their history:")
    sequence = split.full_sequence(0)
    t = len(sequence)
    candidates = candidate_items(
        sequence, t, model.window_config.window_size,
        model.window_config.min_gap,
    )
    top5 = model.recommend(sequence, candidates, t, 5)
    print(f"   candidate pool: {len(candidates)} previously visited places")
    print(f"   top-5 places user 0 is most likely to revisit next: {top5}")


if __name__ == "__main__":
    main()
