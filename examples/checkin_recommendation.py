#!/usr/bin/env python
"""Where-to-revisit: comparing all paper methods on LBSN check-ins.

The paper's motivating scenario: Mary wants steak tonight; months ago she
loved a steak house but cannot remember it. A repeat-consumption
recommender should resurface exactly such previously visited, recently
*un*visited places (the Ω gap excludes places she obviously remembers).

This example fits every method from the paper's Section 5.2 on a
Gowalla-like dataset, prints the Fig 5-style leaderboard, then dissects
one concrete recommendation: where the winning model expects user 3 to
go next, with each candidate's behavioural features.

Run: ``python examples/checkin_recommendation.py``
"""

from repro import (
    DYRCRecommender,
    FPMCRecommender,
    PopRecommender,
    RandomRecommender,
    RecencyRecommender,
    SurvivalRecommender,
    TSPPRRecommender,
    evaluate_recommender,
    generate_gowalla,
    gowalla_default_config,
    temporal_split,
)
from repro.evaluation.reports import format_table
from repro.features.vectorizer import BehavioralFeatureModel
from repro.windows.repeat import candidate_items


def main() -> None:
    dataset = generate_gowalla(random_state=23, user_factor=0.3)
    split = temporal_split(dataset)
    print(f"{split.n_users} users, "
          f"{split.n_train_consumptions()} train check-ins\n")

    config = gowalla_default_config(max_epochs=100_000, seed=3)
    methods = [
        RandomRecommender(random_state=4),
        PopRecommender(),
        RecencyRecommender(),
        FPMCRecommender(config),
        SurvivalRecommender(),
        DYRCRecommender(),
        TSPPRRecommender(config),
    ]

    print("Fitting and evaluating all Section 5.2 methods ...")
    rows = []
    fitted = {}
    for model in methods:
        model.fit(split)
        result = evaluate_recommender(model, split)
        fitted[model.name] = model
        rows.append(result.as_rows(model.name))
    print(format_table(rows))

    print("\nDissecting one recommendation (user 3, end of history):")
    model = fitted["TS-PPR"]
    sequence = split.full_sequence(3)
    t = len(sequence)
    window = model.window_config
    candidates = candidate_items(
        sequence, t, window.window_size, window.min_gap
    )
    top = model.recommend(sequence, candidates, t, 5)

    features = BehavioralFeatureModel().fit(split.train_dataset(), window)
    print(f"  {len(candidates)} revisitable places "
          f"(visited in the last {window.window_size} check-ins, "
          f"but not the last {window.min_gap})")
    detail_rows = []
    for rank, place in enumerate(top, start=1):
        quality, ratio, recency, familiarity = features.vector(
            sequence, place, t
        )
        detail_rows.append({
            "rank": rank,
            "place": place,
            "quality": round(quality, 3),
            "recons. ratio": round(ratio, 3),
            "recency": round(recency, 3),
            "familiarity": round(familiarity, 3),
            "score": round(float(model.score(sequence, [place], t)[0]), 3),
        })
    print(format_table(detail_rows))
    print("\nHigh quality + high reconsumption ratio + moderate recency: "
          "the steak house Mary forgot about.")


if __name__ == "__main__":
    main()
