#!/usr/bin/env python
"""The paper's future work: mixing RRC and novel recommendations.

Section 3: "it may actually be better to somehow mix the results from
RRC and novel item recommendation before presenting to users"; Section 6
names that mixture as future work. This example builds it from the
library's parts:

* STREC estimates, per position, the probability the user will repeat;
* TS-PPR ranks the reconsumable window candidates;
* a novel-trained TS-PPR ranks sampled unconsumed items;
* :class:`repro.novel.MixtureRecommender` allocates the top-k slots by
  the switch probability and blends the two lists.

The unified next-item evaluation then compares the mixture against
repeat-only and novel-only deployments of the same models.

Run: ``python examples/mixture_recommendation.py``
"""

from repro import (
    STRECClassifier,
    TSPPRRecommender,
    generate_gowalla,
    gowalla_default_config,
    temporal_split,
)
from repro.novel import (
    MixtureRecommender,
    NovelEvaluationConfig,
    NovelTSPPRRecommender,
    evaluate_next_item,
)


def main() -> None:
    dataset = generate_gowalla(random_state=17, user_factor=0.25)
    split = temporal_split(dataset)
    print(f"{split.n_users} users; training the three components ...")

    config = gowalla_default_config(max_epochs=80_000, seed=5)
    strec = STRECClassifier().fit(split)
    rrc_model = TSPPRRecommender(config).fit(split)
    novel_model = NovelTSPPRRecommender(config).fit(split)
    print(f"  STREC switch accuracy: {strec.evaluate(split).accuracy:.3f}")

    mixture = MixtureRecommender(strec, rrc_model, novel_model)
    novel_config = NovelEvaluationConfig(n_sampled_candidates=50)

    print("Evaluating the mixture on every next item (repeat or novel):")
    result = evaluate_next_item(
        mixture, split, novel_config=novel_config, random_state=1,
        max_targets_per_user=60,
    )
    print(f"  {result.n_targets} targets "
          f"({result.repeat_share:.0%} repeats)")
    for n, rate in sorted(result.hit_rate.items()):
        print(f"  hit@{n} = {rate:.3f}")

    print("Reference points (same protocol, degenerate routing):")

    class AlwaysRepeat(MixtureRecommender):
        def repeat_probability(self, sequence, t):  # noqa: D102
            return 1.0

    class NeverRepeat(MixtureRecommender):
        def repeat_probability(self, sequence, t):  # noqa: D102
            return 0.0

    for label, cls in (("repeat-only", AlwaysRepeat), ("novel-only", NeverRepeat)):
        variant = cls(strec, rrc_model, novel_model)
        reference = evaluate_next_item(
            variant, split, novel_config=novel_config, random_state=1,
            max_targets_per_user=60,
        )
        print(f"  {label:12s} hit@10 = {reference.hit_rate[10]:.3f}")
    print("The STREC-routed mixture should sit at or above both extremes.")


if __name__ == "__main__":
    main()
