#!/usr/bin/env python
"""Extending TS-PPR with a domain-specific behavioural feature.

The paper: "more domain-specific features can also be appended to the
vector representation of behavioural features as extensions." This
example adds a *session co-visit* feature for LBSN check-ins — how often
the candidate place was visited right after the place the user just
checked into (a proximity/routine proxy a real deployment would compute
from geography) — registers it, and trains TS-PPR with F = 5 features.

Run: ``python examples/custom_features.py``
"""

from typing import Dict, Optional, Tuple

import numpy as np

from repro import (
    TSPPRRecommender,
    evaluate_recommender,
    generate_gowalla,
    gowalla_default_config,
    temporal_split,
)
from repro.config import WindowConfig
from repro.data.dataset import Dataset
from repro.data.sequence import ConsumptionSequence
from repro.features.base import FeatureExtractor, register_feature, unregister_feature
from repro.windows.window import WindowView


class SessionCoVisitFeature(FeatureExtractor):
    """P(candidate is visited next | the user's current place).

    Learned from training bigrams; normalized per previous place. In a
    real LBSN this would fold in geographic distance — here it captures
    the generator's routine structure (A then B then A ...).
    """

    name = "session_covisit"

    def __init__(self) -> None:
        self._bigram: Optional[Dict[Tuple[int, int], float]] = None

    def fit(self, train_dataset: Dataset, window: WindowConfig) -> "SessionCoVisitFeature":
        counts: Dict[Tuple[int, int], int] = {}
        totals: Dict[int, int] = {}
        for sequence in train_dataset:
            items = sequence.items.tolist()
            for previous, current in zip(items, items[1:]):
                counts[(previous, current)] = counts.get((previous, current), 0) + 1
                totals[previous] = totals.get(previous, 0) + 1
        self._bigram = {
            pair: count / totals[pair[0]] for pair, count in counts.items()
        }
        return self

    def value(
        self,
        sequence: ConsumptionSequence,
        item: int,
        t: int,
        window: WindowView,
    ) -> float:
        if self._bigram is None or t == 0:
            return 0.0
        current_place = int(sequence[t - 1])
        return self._bigram.get((current_place, int(item)), 0.0)


def main() -> None:
    dataset = generate_gowalla(random_state=31, user_factor=0.25)
    split = temporal_split(dataset)

    register_feature(SessionCoVisitFeature.name, SessionCoVisitFeature)
    try:
        print("Training baseline TS-PPR (the paper's 4 features) ...")
        base_config = gowalla_default_config(max_epochs=80_000, seed=6)
        baseline = TSPPRRecommender(base_config).fit(split)
        base_result = evaluate_recommender(baseline, split)

        print("Training extended TS-PPR (4 + session_covisit = F=5) ...")
        extended_config = base_config.with_overrides(
            feature_names=(
                "item_quality",
                "item_reconsumption_ratio",
                "recency",
                "dynamic_familiarity",
                "session_covisit",
            )
        )
        extended = TSPPRRecommender(extended_config).fit(split)
        ext_result = evaluate_recommender(extended, split)

        for name, result in (("4 features", base_result),
                             ("5 features", ext_result)):
            print(f"  {name}: "
                  + "  ".join(f"MaAP@{n}={result.maap[n]:.3f}" for n in (1, 5, 10)))
        delta = ext_result.maap[10] - base_result.maap[10]
        print(f"  Δ MaAP@10 from the domain feature: {delta:+.3f}")
    finally:
        unregister_feature(SessionCoVisitFeature.name)


if __name__ == "__main__":
    main()
