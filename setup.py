"""Setuptools shim.

``pip install -e .`` requires network access for PEP 517 build isolation;
in offline environments install with ``python setup.py develop`` instead
(metadata comes from pyproject.toml either way).
"""

from setuptools import setup

setup()
