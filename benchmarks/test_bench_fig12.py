"""Bench: regenerate Fig 12 (convergence of r̃).

Shape checks: r̃ rises from its initial value and converges; the
converged margin is higher on the Gowalla-like data than the
Lastfm-like data (the paper's explanation for the accuracy-gap
difference).
"""


def test_bench_fig12(benchmark, run_artifact):
    result = benchmark.pedantic(
        lambda: run_artifact("fig12"), rounds=1, iterations=1
    )
    gowalla = result.series["Gowalla-like / r̃ vs updates"]
    lastfm = result.series["Lastfm-like / r̃ vs updates"]
    for series in (gowalla, lastfm):
        assert series[-1][1] > series[0][1]
    assert gowalla[-1][1] > lastfm[-1][1]
