"""Overhead guard for training checkpoints.

Checkpointing exists so long runs survive crashes; it must not tax the
runs that don't crash. This bench fits the same TS-PPR model with and
without a checkpoint manager and asserts the checkpointed fit stays
within 5% of the plain fit (min-of-3 timings) while producing
bit-identical parameters.

The cadence mirrors production use: a snapshot every 256 convergence
checks, i.e. every ~20k updates here. Snapshots cost ~15ms each
(npz + fsync + rename, twice — dominated by fsync of the parameter
payload), so the budget holds when they are amortized over real chunks
of training; saving every check would blow it on any short run.
"""

import time

import numpy as np

from repro.config import TSPPRConfig
from repro.data.split import temporal_split
from repro.models.tsppr import TSPPRRecommender
from repro.synth.gowalla import generate_gowalla

# Tolerance tightened so the run spends its full update budget — the
# timing must cover a long training run, not an early-converged one.
CONFIG = TSPPRConfig(max_epochs=100_000, seed=8, convergence_tol=1e-9)
CHECKPOINT_EVERY = 256


def _split():
    dataset = generate_gowalla(
        random_state=101, user_factor=0.12, length_factor=0.6
    )
    return temporal_split(dataset)


def _fit(split, checkpoint_dir=None):
    model = TSPPRRecommender(CONFIG)
    if checkpoint_dir is None:
        model.fit(split)
    else:
        model.fit(
            split,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=CHECKPOINT_EVERY,
        )
    return model


def _min_of_3(fn):
    best_seconds, model = None, None
    for _ in range(3):
        start = time.perf_counter()
        model = fn()
        elapsed = time.perf_counter() - start
        if best_seconds is None or elapsed < best_seconds:
            best_seconds = elapsed
    return best_seconds, model


def test_bench_checkpoint_overhead(benchmark, tmp_path):
    split = _split()
    benchmark.pedantic(lambda: _fit(split), rounds=1, iterations=1)  # warm-up

    runs = iter(range(100))

    def checkpointed():
        # A fresh directory per run: resume must not kick in and
        # shrink the measured work.
        return _fit(split, checkpoint_dir=tmp_path / f"run{next(runs)}")

    # Wall-clock ratios on a shared box are noisy; a single re-measure
    # before failing keeps the guard tight without being flaky.
    for attempt in range(2):
        plain, model_plain = _min_of_3(lambda: _fit(split))
        ckpt, model_ckpt = _min_of_3(checkpointed)
        overhead = ckpt / plain - 1.0
        n_snapshots = len(list((tmp_path / "run0").glob("ckpt-*.json")))
        print(
            f"\ncheckpoint overhead: plain={plain * 1e3:.1f}ms "
            f"checkpointed={ckpt * 1e3:.1f}ms ({overhead:+.2%}, "
            f"{n_snapshots} snapshots kept)"
        )
        if ckpt <= plain * 1.05:
            break
    assert ckpt <= plain * 1.05, (
        f"checkpointing overhead {overhead:+.2%} exceeds the 5% budget"
    )
    assert np.array_equal(model_ckpt.user_factors_, model_plain.user_factors_)
    assert np.array_equal(model_ckpt.item_factors_, model_plain.item_factors_)
    assert np.array_equal(model_ckpt.mappings_, model_plain.mappings_)
    assert model_ckpt.sgd_result_ == model_plain.sgd_result_
