"""Ablation bench: per-user mappings A_u vs one shared mapping A.

Per-user mappings are the "personalized" in TS-PPR. The Gowalla-like
generator gives users heterogeneous frequency/recency trade-offs, so the
per-user variant should beat the shared one there.
"""

from repro.evaluation.protocol import evaluate_recommender
from repro.experiments.common import FAST_SCALE, build_split, default_config
from repro.models.tsppr import TSPPRRecommender


def _evaluate(share_mapping):
    split = build_split("gowalla", FAST_SCALE)
    config = default_config("gowalla", FAST_SCALE, share_mapping=share_mapping)
    model = TSPPRRecommender(config).fit(split)
    return evaluate_recommender(model, split)


def test_bench_ablation_shared_mapping(benchmark):
    per_user = _evaluate(False)
    shared = benchmark.pedantic(
        lambda: _evaluate(True), rounds=1, iterations=1
    )
    print(
        f"\nmapping ablation MaAP@10: per-user={per_user.maap[10]:.4f} "
        f"shared={shared.maap[10]:.4f}"
    )
    # Personalization must not lose to the shared mapping by more than
    # noise, and is expected to win on heterogeneous users.
    assert per_user.maap[10] >= shared.maap[10] - 0.02
