"""Ablation bench: hyperbolic (Eq 19) vs exponential (Eq 20) recency.

The paper chooses the hyperbolic form, citing its Ref. [14]'s finding
that hyperbolic decay fits interest forgetting better. This ablation
trains TS-PPR with each form on the Gowalla-like data and reports both;
the check is weak on purpose (either may win by a little on synthetic
data) — what must hold is that both variants train and the hyperbolic
default is not *clearly* worse.
"""

from repro.evaluation.protocol import evaluate_recommender
from repro.experiments.common import FAST_SCALE, build_split, default_config
from repro.models.tsppr import TSPPRRecommender


def _evaluate(recency_kind):
    split = build_split("gowalla", FAST_SCALE)
    config = default_config("gowalla", FAST_SCALE, recency_kind=recency_kind)
    model = TSPPRRecommender(config).fit(split)
    return evaluate_recommender(model, split)


def test_bench_ablation_recency_kind(benchmark):
    hyperbolic = _evaluate("hyperbolic")

    exponential = benchmark.pedantic(
        lambda: _evaluate("exponential"), rounds=1, iterations=1
    )
    print(
        f"\nrecency ablation MaAP@10: hyperbolic={hyperbolic.maap[10]:.4f} "
        f"exponential={exponential.maap[10]:.4f}"
    )
    assert hyperbolic.maap[10] > 0.0
    assert exponential.maap[10] > 0.0
    assert hyperbolic.maap[10] >= exponential.maap[10] - 0.05
