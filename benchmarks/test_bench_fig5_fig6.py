"""Bench: regenerate Fig 5 (MaAP) and Fig 6 (MiAP) for all methods.

Shape checks (the paper's headline results):

* Gowalla-like: TS-PPR best at Top-1/5/10, with a large Top-1 margin.
* Lastfm-like: TS-PPR loses Top-1 (to Recency), stays competitive-to-best
  at Top-5/Top-10.
* Pop beats Random on both datasets (with Ω=10 in force).
"""

from repro.experiments.common import FAST_SCALE, accuracy_run


def _value(rows, dataset, method, column):
    for row in rows:
        if row["Data set"] == dataset and row["Method"] == method:
            return row[column]
    raise KeyError((dataset, method, column))


def test_bench_fig5(benchmark, run_artifact):
    result = benchmark.pedantic(
        lambda: run_artifact("fig5"), rounds=1, iterations=1
    )
    rows = result.rows
    # Gowalla-like: TS-PPR wins at every cut-off.
    for top_n in (1, 5, 10):
        ours = _value(rows, "Gowalla-like", "TS-PPR", f"MaAP@{top_n}")
        for method in ("Random", "Pop", "Recency", "FPMC", "Survival", "DYRC"):
            assert ours >= _value(rows, "Gowalla-like", method, f"MaAP@{top_n}")
    # Large relative Top-1 margin over the best baseline.
    best_top1 = max(
        _value(rows, "Gowalla-like", m, "MaAP@1")
        for m in ("Random", "Pop", "Recency", "FPMC", "Survival", "DYRC")
    )
    assert _value(rows, "Gowalla-like", "TS-PPR", "MaAP@1") > 1.15 * best_top1
    # Lastfm-like: Recency is competitive-to-winning at Top-1 (at full
    # scale it wins outright, as in the paper; at this bench scale the
    # two are within noise of each other) — unlike Gowalla-like, where
    # TS-PPR dominates Top-1 by a wide margin.
    assert _value(rows, "Lastfm-like", "Recency", "MaAP@1") > 0.75 * _value(
        rows, "Lastfm-like", "TS-PPR", "MaAP@1"
    )
    best_top5 = max(
        _value(rows, "Lastfm-like", m, "MaAP@5")
        for m in ("Random", "Pop", "FPMC", "Survival", "DYRC")
    )
    assert _value(rows, "Lastfm-like", "TS-PPR", "MaAP@5") > 0.92 * best_top5
    # Pop beats Random everywhere.
    for dataset in ("Gowalla-like", "Lastfm-like"):
        assert _value(rows, dataset, "Pop", "MaAP@10") > _value(
            rows, dataset, "Random", "MaAP@10"
        )


def test_bench_fig6(benchmark, run_artifact):
    result = benchmark.pedantic(
        lambda: run_artifact("fig6"), rounds=1, iterations=1
    )
    rows = result.rows
    for top_n in (5, 10):
        ours = _value(rows, "Gowalla-like", "TS-PPR", f"MiAP@{top_n}")
        for method in ("Random", "Pop", "Recency"):
            assert ours > _value(rows, "Gowalla-like", method, f"MiAP@{top_n}")


def test_bench_fig5_fig6_share_one_run(benchmark):
    """fig5 and fig6 must reuse the cached accuracy run (no retraining)."""
    def _cached():
        return accuracy_run("gowalla", FAST_SCALE)

    first = _cached()
    second = benchmark.pedantic(_cached, rounds=1, iterations=1)
    assert first is second
