"""Bench: regenerate Table 3 (relative improvement of TS-PPR).

Shape checks: Gowalla-like improvements positive at every cell and
largest at Top-1 (the paper's 82%/38%/36% pattern); Lastfm-like
improvements much smaller — small percentages or the paper's ``\\``
(TS-PPR not best at that cell; at full scale the Top-1 cells are ``\\``
exactly as in the paper).
"""


def _percent(cell):
    return float(cell.rstrip("%")) if cell != "\\" else None


def test_bench_table3(benchmark, run_artifact):
    result = benchmark.pedantic(
        lambda: run_artifact("table3"), rounds=1, iterations=1
    )
    by_dataset = {row["Data set"]: row for row in result.rows}

    gowalla = by_dataset["Gowalla-like"]
    for metric in ("MaAP", "MiAP"):
        top1 = _percent(gowalla[f"{metric} Top-1"])
        top5 = _percent(gowalla[f"{metric} Top-5"])
        top10 = _percent(gowalla[f"{metric} Top-10"])
        assert top1 is not None and top1 > 10
        assert top5 is not None and top5 >= 0
        assert top10 is not None and top10 >= 0
        # Top-1 improvement dominates, as in the paper's 82%/38%/36%.
        assert top1 > top5 and top1 > top10

    # Lastfm-like improvements are far less significant than
    # Gowalla-like ones (the paper's central contrast between the
    # datasets): every Lastfm cell is either "\" or a small percentage.
    lastfm = by_dataset["Lastfm-like"]
    for metric in ("MaAP", "MiAP"):
        for cut in ("Top-1", "Top-5", "Top-10"):
            value = _percent(lastfm[f"{metric} {cut}"])
            assert value is None or value < 30, (
                f"Lastfm-like {metric} {cut} improvement unexpectedly "
                f"large ({value}%)"
            )
