"""Bench: online-learning throughput, serving overhead, and drift win.

Three guards over the ISGD online-update path, recorded to
``BENCH_online.json``:

* **Update throughput** — events/second through the buffered
  :class:`~repro.online.trainer.OnlineTrainer` (capture + batched
  kernel flush) must beat the naive alternative — refitting the model
  after every event — by **>= 3x**. The naive rate is measured from
  real refits of the same model at the same budget, so the ratio is
  honest; in practice it is orders of magnitude.
* **Serving overhead** — the same held-out stream stepped through a
  service with updates off and on: the online p99 (step latency,
  scoring + ingest + capture) must stay within **1.2x** of the frozen
  p99. Updates ride the ingest path under the store lock, so this is
  the guard that the batch window keeps them off the tail.
* **Drift win** — the ``fig_drift`` artifact at fast scale: overall
  sliding-window MaAP@10 of the online-updated TS-PPR must be at least
  the frozen model's on the drifting stream — staleness is the whole
  reason the subsystem exists.
"""

from __future__ import annotations

import time
from typing import List, Tuple

import numpy as np
import pytest

from repro.config import TSPPRConfig, WindowConfig
from repro.data.split import SplitDataset, temporal_split
from repro.models.tsppr import TSPPRRecommender
from repro.online.trainer import OnlineTrainer
from repro.serving.events import EventLog
from repro.serving.service import ServiceConfig, service_for_split
from repro.serving.state import SessionStore
from repro.synth.base import SyntheticConfig, generate_dataset
from repro.synth.gowalla import generate_gowalla

pytestmark = pytest.mark.bench

WINDOW = WindowConfig(window_size=10, min_gap=2)
FIT = TSPPRConfig(max_epochs=20_000, seed=11)
TOP_N = 10

#: Serving-regime workload for the overhead guard — the serving bench's
#: recipe (long sequences, large windows, dense targets), where the
#: per-request session walk and candidate scoring dominate and a
#: two-row capture is the marginal cost it should be. Tiny-window
#: regimes make capture comparable to scoring and measure feature cost,
#: not ingest-path overhead.
OVERHEAD_WINDOW = WindowConfig(window_size=250, min_gap=10)
OVERHEAD_SYNTH = SyntheticConfig(
    name="online-overhead-bench",
    n_users=4,
    n_items=4000,
    sequence_length_range=(1400, 1800),
    catalog_size_range=(300, 400),
    zipf_exponent=0.7,
    p_explore_range=(0.2, 0.3),
    memory_span=240,
    frequency_exponent=0.05,
    recency_exponent=0.05,
    explore_weight_exponent=0.0,
)

#: Tail-latency comparison repetitions. Both arms run back-to-back
#: inside one rep and the guard takes the best *paired* ratio, so
#: machine drift between reps (thermal, background daemons on the
#: 1-core CI box) cancels instead of failing the comparison
#: one-sidedly.
REPS = 3

MIN_SPEEDUP = 3.0
MAX_P99_RATIO = 1.2


def build_split() -> SplitDataset:
    return temporal_split(
        generate_gowalla(random_state=11, user_factor=0.3, length_factor=1.0)
    )


def held_out_stream(split: SplitDataset) -> List[Tuple[int, int]]:
    stream = []
    for user in range(split.n_users):
        items = split.full_sequence(user).items[
            split.train_boundary(user):
        ].tolist()
        stream.extend((user, item) for item in items)
    return stream


def fresh_store(split: SplitDataset) -> SessionStore:
    def base_history(user: int):
        if 0 <= user < split.n_users:
            return split.train_sequence(user)
        return None

    return SessionStore(
        WINDOW.window_size,
        WINDOW.min_gap,
        capacity=max(split.n_users, 1),
        history_provider=base_history,
    )


def test_bench_update_throughput(bench_record) -> None:
    """Buffered ISGD must beat per-event refits by >= 3x events/sec."""
    split = build_split()
    stream = held_out_stream(split)
    model = TSPPRRecommender(FIT).fit(split, WINDOW)

    # Naive baseline: a model kept fresh by refitting after every
    # event. One refit bounds the per-event cost from below (the naive
    # loop would also replay the event into the training set).
    refit_times = []
    for _ in range(2):
        start = time.perf_counter()
        TSPPRRecommender(FIT).fit(split, WINDOW)
        refit_times.append(time.perf_counter() - start)
    naive_events_per_s = 1.0 / min(refit_times)

    trainer = OnlineTrainer(model, batch_window=32)
    store = fresh_store(split)
    start = time.perf_counter()
    for user, item in stream:
        session = store.get(user)
        trainer.observe_next(user, item, session)
        session.append(item)
    trainer.flush()
    elapsed = time.perf_counter() - start
    online_events_per_s = len(stream) / elapsed

    speedup = online_events_per_s / naive_events_per_s
    bench_record(
        "online",
        "update_throughput",
        events=len(stream),
        online_events_per_s=round(online_events_per_s, 1),
        naive_refit_events_per_s=round(naive_events_per_s, 4),
        speedup_vs_naive_refit=round(speedup, 1),
        floor=MIN_SPEEDUP,
    )
    print(
        f"\nonline {online_events_per_s:,.0f} ev/s vs naive refit "
        f"{naive_events_per_s:.3f} ev/s -> {speedup:,.0f}x"
    )
    assert speedup >= MIN_SPEEDUP


def _step_latencies(
    split: SplitDataset, stream, online: str, tmp_path
) -> np.ndarray:
    model = TSPPRRecommender(FIT).fit(split, OVERHEAD_WINDOW)
    config = ServiceConfig(
        window=OVERHEAD_WINDOW, n_items=split.n_items, online=online
    )
    log = EventLog.open(
        tmp_path / f"{online}-{time.monotonic_ns()}.log",
        fsync_policy="never",
    )
    latencies = np.empty(len(stream))
    with service_for_split(
        model, split, event_log=log, config=config
    ) as service:
        for index, (user, item) in enumerate(stream):
            start = time.perf_counter()
            service.step(user, item, k=TOP_N)
            latencies[index] = time.perf_counter() - start
    return latencies


def test_bench_serving_overhead(bench_record, tmp_path) -> None:
    """step() p99 with updates on stays within 1.2x of updates off."""
    split = temporal_split(generate_dataset(OVERHEAD_SYNTH, random_state=11))
    stream = held_out_stream(split)
    pairs = []
    for _ in range(REPS):
        frozen = _step_latencies(split, stream, "off", tmp_path)
        isgd = _step_latencies(split, stream, "isgd", tmp_path)
        pairs.append(
            (
                float(np.percentile(frozen, 99)),
                float(np.percentile(isgd, 99)),
            )
        )
    frozen_p99, online_p99 = min(pairs, key=lambda pair: pair[1] / pair[0])
    ratio = online_p99 / frozen_p99
    bench_record(
        "online",
        "serving_overhead",
        requests=len(stream),
        frozen_p99_ms=round(frozen_p99 * 1e3, 4),
        online_p99_ms=round(online_p99 * 1e3, 4),
        p99_ratio=round(ratio, 3),
        ceiling=MAX_P99_RATIO,
    )
    print(
        f"\nstep p99: frozen {frozen_p99 * 1e3:.3f}ms, online "
        f"{online_p99 * 1e3:.3f}ms -> ratio {ratio:.3f}"
    )
    assert ratio <= MAX_P99_RATIO


def test_bench_drift_win(bench_record, run_artifact) -> None:
    """On the drifting stream, online MaAP@10 >= frozen MaAP@10."""
    result = run_artifact("fig_drift")
    by_method = {row["method"]: row for row in result.rows}
    frozen = float(by_method["TS-PPR frozen"][f"MaAP@{TOP_N}"])
    online = float(by_method["TS-PPR online (isgd)"][f"MaAP@{TOP_N}"])
    bench_record(
        "online",
        "drift_win",
        frozen_maap=frozen,
        online_maap=online,
        targets=int(by_method["TS-PPR frozen"]["targets"]),
        online_minus_frozen=round(online - frozen, 4),
    )
    assert online >= frozen, (
        f"online MaAP@{TOP_N} {online:.4f} fell below frozen "
        f"{frozen:.4f} on the drifting stream"
    )
