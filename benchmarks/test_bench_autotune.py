"""Bench: the autotuner's chosen config must beat the corners it avoided.

One full ``AutoTuner`` run over the serving knob spaces, on the same
TS-PPR heavy-window regime as the serving bench (dense targets, |W| =
250) with the same seeded bursty arrival schedule, then three guards:

* **Never-regress** — the tuned config's measured p99 is <= 1.0x the
  built-in default's measured p99 under the identical schedule. This is
  the autotuner's core promise (the default is always in the validated
  set, so the argmin cannot lose to it), re-proven here by measurement
  on a real workload rather than by construction.
* **Separation** — the *worst* predicted in-range candidate (the cost
  model's bottom pick, typically the 10ms-straggler-wait micro-batch
  corner), measured under the same schedule, must be >= 1.5x the tuned
  p99. A tuner that cannot separate from the worst corner of its own
  search space is ranking noise.
* **Model agreement** — the measured-best candidate is one the cost
  model put in its top-k. The analytic model exists to spend the
  measurement budget where it matters; this guard fails if ranking and
  reality disagree about the winner.

The chosen knobs, the three measured p99s, and the separation ratios
are recorded to ``BENCH_autotune.json``.
"""

from __future__ import annotations

import pytest

from repro.config import TSPPRConfig, WindowConfig
from repro.data.split import temporal_split
from repro.models.tsppr import TSPPRRecommender
from repro.synth.base import SyntheticConfig, generate_dataset
from repro.tuning.autotune import AutoTuner, candidate_key
from repro.tuning.defaults import defaults_for
from repro.tuning.measure import ServingWorkload
from repro.tuning.probe import probe_machine

pytestmark = pytest.mark.bench

#: Heavy-window regime shared with the serving/engine benches.
BENCH_WINDOW = WindowConfig(window_size=250, min_gap=10)

#: Dense-target generator (the serving bench's recipe at 3/4 length):
#: long sequences make the per-request session walk the dominant cost,
#: which is the regime where batching-mode knobs actually matter.
BENCH_SYNTH = SyntheticConfig(
    name="autotune-bench",
    n_users=4,
    n_items=4000,
    sequence_length_range=(1000, 1300),
    catalog_size_range=(300, 400),
    zipf_exponent=0.7,
    p_explore_range=(0.2, 0.3),
    memory_span=240,
    frequency_exponent=0.05,
    recency_exponent=0.05,
    explore_weight_exponent=0.0,
)

#: The serving bench's calm-heavy bursty schedule: calm Poisson singles
#: at 400 Hz punctuated by 16-request bursts. Calm-heavy is the shape
#: that separates batching modes — straggler waits are paid per calm
#:  single, continuous admission pays none.
BURSTY = dict(calm_rate_hz=400.0, burst_size=16, calm_between=32)
N_EVENTS = 560
SCHEDULE_SEED = 808
TOP_K = 5
REPS = 2


@pytest.fixture(scope="module")
def bench_workload():
    split = temporal_split(generate_dataset(BENCH_SYNTH, 101))
    model = TSPPRRecommender(TSPPRConfig(max_epochs=1000, seed=3))
    model.fit(split, BENCH_WINDOW)
    from repro.tuning.load import LoadGenerator
    from repro.tuning.measure import _interleaved_stream

    events = _interleaved_stream(split)[:N_EVENTS]
    arrivals = LoadGenerator.bursty_times(
        len(events), seed=SCHEDULE_SEED, **BURSTY
    )
    return ServingWorkload.from_parts(
        split, model, events, arrivals, BENCH_WINDOW, **BURSTY
    )


@pytest.fixture(scope="module")
def tuned(bench_workload, tmp_path_factory):
    journal = tmp_path_factory.mktemp("tune") / "journal.json"
    tuner = AutoTuner(
        "serving",
        workload=bench_workload,
        probe=probe_machine(),
        budget_s=600.0,
        top_k=TOP_K,
        journal_path=journal,
        reps=REPS,
    )
    profile = tuner.run()
    return tuner, profile


def test_bench_autotune_serving(tuned, bench_workload, bench_record):
    tuner, profile = tuned
    chosen = profile.knobs_for("serving")
    chosen_key = candidate_key(chosen)
    validated = {result.key: result for result in tuner.results}

    # The default was validated under the same schedule; fish it out.
    default = defaults_for("serving")
    default_key = candidate_key(default)
    assert default_key in validated, "default config must always be measured"
    default_p99 = float(validated[default_key].measured["p99_ms"])
    tuned_p99 = float(profile.validation_for("serving")["p99_ms"])

    # The cost model's worst in-range corner, measured for real.
    worst = tuner.worst_candidate()
    worst_stats = bench_workload.measure(worst, reps=REPS)
    worst_p99 = float(worst_stats["p99_ms"])

    # Where did the measured winner sit in the model's ranking?
    ranked_keys = [
        candidate_key(c)
        for c in sorted(
            tuner.enumerate_candidates(),
            key=lambda c: tuner.predictions[candidate_key(c)].rank_key(
                candidate_key(c)
            ),
        )
    ]
    model_rank = ranked_keys.index(chosen_key) + 1

    separation = worst_p99 / tuned_p99
    report = (
        f"autotune serving: {tuner.n_candidates} candidates, "
        f"{len(tuner.results)} measured; tuned p99 {tuned_p99:.3f}ms "
        f"(model rank {model_rank}/{len(ranked_keys)}) vs default "
        f"{default_p99:.3f}ms vs worst-in-range {worst_p99:.3f}ms "
        f"({separation:.2f}x separation); chosen {chosen}"
    )
    print()
    print(report)

    bench_record(
        "autotune",
        "serving_tuned",
        p99_ms=round(tuned_p99, 3),
        model_rank=model_rank,
        knobs=dict(chosen),
        candidates=tuner.n_candidates,
        measured=len(tuner.results),
        top_k=TOP_K,
        reps=REPS,
        events=N_EVENTS,
        seed=SCHEDULE_SEED,
        **BURSTY,
    )
    bench_record(
        "autotune",
        "serving_reference_points",
        default_p99_ms=round(default_p99, 3),
        worst_p99_ms=round(worst_p99, 3),
        worst_knobs=dict(worst),
        vs_default=round(tuned_p99 / default_p99, 3),
        separation=round(separation, 3),
    )

    # Guard 1: tuning can never regress the hand-picked default.
    assert tuned_p99 <= 1.0 * default_p99, report
    # Guard 2: the tuned config separates from the worst in-range corner.
    assert separation >= 1.5, report
    # Guard 3: the measured winner was in the cost model's top-k (or is
    # the always-measured default itself).
    assert chosen_key in set(ranked_keys[:TOP_K]) | {default_key}, report


def test_bench_autotune_profile_round_trips(tuned, tmp_path):
    """The emitted profile loads back bit-exactly (checksum verified)."""
    from repro.tuning.profile import MachineProfile

    _, profile = tuned
    path = tmp_path / "profile.json"
    profile.save(path)
    loaded = MachineProfile.load(path)
    assert loaded.subsystems == profile.subsystems
    assert loaded.checksum() == profile.checksum()
