"""Ablation bench: FPMC with vs without the user-item MF term.

The paper's FPMC adaptation "only considers the transition probability
between items" (our default). Adding back Rendle's user-item term lets
FPMC memorize per-user favourites, which on stable-taste synthetic data
makes it markedly stronger — explaining why the adaptation choice matters
when reading the paper's Fig 5.
"""

from repro.evaluation.protocol import evaluate_recommender
from repro.experiments.common import FAST_SCALE, build_split, default_config
from repro.models.fpmc import FPMCRecommender


def _evaluate(use_user_term):
    split = build_split("gowalla", FAST_SCALE)
    config = default_config("gowalla", FAST_SCALE)
    model = FPMCRecommender(config, use_user_term=use_user_term).fit(split)
    return evaluate_recommender(model, split)


def test_bench_ablation_fpmc_user_term(benchmark):
    mc_only = _evaluate(False)
    with_user = benchmark.pedantic(
        lambda: _evaluate(True), rounds=1, iterations=1
    )
    print(
        f"\nFPMC ablation MaAP@10: mc-only={mc_only.maap[10]:.4f} "
        f"with-user-term={with_user.maap[10]:.4f}"
    )
    assert with_user.maap[10] >= mc_only.maap[10] - 0.02
