"""Ablation bench: the static uᵀv term of Eq 5 on vs off.

Eq 5 combines static preference (uᵀv) with the time-sensitive term
(uᵀ A_u f). Dropping the static term removes the per-user item
memorization channel; on affinity-heavy Gowalla-like data the full model
should not be worse than the dynamic-only variant.
"""

from repro.evaluation.protocol import evaluate_recommender
from repro.experiments.common import FAST_SCALE, build_split, default_config
from repro.models.tsppr import TSPPRRecommender


def _evaluate(use_static_term):
    split = build_split("gowalla", FAST_SCALE)
    config = default_config(
        "gowalla", FAST_SCALE, use_static_term=use_static_term
    )
    model = TSPPRRecommender(config).fit(split)
    return evaluate_recommender(model, split)


def test_bench_ablation_static_term(benchmark):
    full = _evaluate(True)
    dynamic_only = benchmark.pedantic(
        lambda: _evaluate(False), rounds=1, iterations=1
    )
    print(
        f"\nstatic-term ablation MaAP@10: full={full.maap[10]:.4f} "
        f"dynamic-only={dynamic_only.maap[10]:.4f}"
    )
    assert full.maap[10] >= dynamic_only.maap[10] - 0.02
