"""Bench: regenerate Fig 10 (sensitivity to negative-sample count S).

Shape check: the paper finds S barely matters — the spread of MaAP@10
across the S grid stays small on both datasets.
"""


def test_bench_fig10(benchmark, run_artifact):
    result = benchmark.pedantic(
        lambda: run_artifact("fig10"), rounds=1, iterations=1
    )
    assert len(result.series) == 8  # 2 datasets x 2 metrics x 2 Ω settings
    for name, points in result.series.items():
        values = [v for _, v in points]
        spread = max(values) - min(values)
        assert spread < 0.15, f"{name}: S-sensitivity too large ({spread:.3f})"
