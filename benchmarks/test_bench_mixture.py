"""Extension bench: the STREC-routed RRC/novel mixture (paper future work).

Regenerates the unified next-item evaluation at fast scale and asserts
the routing adds value: the mixture's hit@10 must not fall below either
degenerate deployment (repeat-only, novel-only) by more than noise.
"""

from repro.experiments.common import FAST_SCALE, build_split, default_config
from repro.models.strec import STRECClassifier
from repro.models.tsppr import TSPPRRecommender
from repro.novel import (
    MixtureRecommender,
    NovelEvaluationConfig,
    NovelTSPPRRecommender,
    evaluate_next_item,
)

NOVEL_CONFIG = NovelEvaluationConfig(n_sampled_candidates=50)


def _components():
    split = build_split("gowalla", FAST_SCALE)
    config = default_config("gowalla", FAST_SCALE)
    strec = STRECClassifier().fit(split)
    rrc = TSPPRRecommender(config).fit(split)
    novel = NovelTSPPRRecommender(config).fit(split)
    return split, strec, rrc, novel


class _FixedRouting(MixtureRecommender):
    def __init__(self, probability, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._probability = probability

    def repeat_probability(self, sequence, t):
        return self._probability


def test_bench_mixture(benchmark):
    split, strec, rrc, novel = _components()

    def _run():
        mixture = MixtureRecommender(strec, rrc, novel)
        return evaluate_next_item(
            mixture, split, novel_config=NOVEL_CONFIG, random_state=1,
            max_targets_per_user=40,
        )

    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    print(f"\nmixture hit rates: "
          f"{ {n: round(r, 4) for n, r in sorted(result.hit_rate.items())} } "
          f"(repeat share {result.repeat_share:.2f})")

    repeat_only = evaluate_next_item(
        _FixedRouting(1.0, strec, rrc, novel), split,
        novel_config=NOVEL_CONFIG, random_state=1, max_targets_per_user=40,
    )
    novel_only = evaluate_next_item(
        _FixedRouting(0.0, strec, rrc, novel), split,
        novel_config=NOVEL_CONFIG, random_state=1, max_targets_per_user=40,
    )
    print(f"repeat-only hit@10 = {repeat_only.hit_rate[10]:.4f}, "
          f"novel-only hit@10 = {novel_only.hit_rate[10]:.4f}")
    # The switch's slot split costs a little versus the better extreme
    # (the repeat share is high, so repeat-only is a strong straw man)
    # but must beat the worse extreme decisively and stay within 0.1 of
    # the better one.
    floor = max(repeat_only.hit_rate[10], novel_only.hit_rate[10])
    assert result.hit_rate[10] >= floor - 0.1
    assert result.hit_rate[10] > min(
        repeat_only.hit_rate[10], novel_only.hit_rate[10]
    )
