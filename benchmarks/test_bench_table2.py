"""Bench: regenerate Table 2 (dataset statistics)."""


def test_bench_table2(benchmark, run_artifact):
    result = benchmark.pedantic(
        lambda: run_artifact("table2"), rounds=1, iterations=1
    )
    assert len(result.rows) == 2
    gowalla, lastfm = result.rows
    assert gowalla["Users"] > 0 and lastfm["Users"] > 0
    # Lastfm-like must reproduce the ~77% repeat regime the paper cites.
    assert 0.6 < lastfm["Repeat fraction"] < 0.9
