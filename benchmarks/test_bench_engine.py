"""Bench: batch-scoring engine throughput vs the per-query walk.

The guard drives the exact seed-era evaluation loop — one
``model.score`` call per target position discovered by
``iter_evaluation_positions``, followed by the stable top-k argsort —
against the engine pipeline: ``collect_queries`` once per user, one
``recommend_batch`` call per user.

The workload is a heavy-window regime (|W| = 250, dense targets, large
personal catalogs with near-uniform repeat choice), where candidate
sets average ~85 items. There the per-query path's per-candidate scalar
feature extraction dominates and the vectorized session kernels must
win by a wide margin; the assertion requires **batched >= 3x
per-query** for TS-PPR. Recency (a much cheaper model, so less room
over the fixed per-walk costs) only has to beat the per-query walk at
all. Bit-identity of the two paths is asserted in tier-1
(``tests/test_batch_equivalence.py``); this file guards only speed.

Runs outside tier-1: ``testpaths`` pins the default run to ``tests/``,
and the module is additionally marked ``bench`` so explicit benchmark
invocations can select it with ``pytest benchmarks -m bench``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.config import TSPPRConfig, WindowConfig
from repro.data.split import temporal_split
from repro.evaluation.protocol import collect_queries
from repro.models.recency import RecencyRecommender
from repro.models.tsppr import TSPPRRecommender
from repro.synth.base import SyntheticConfig, generate_dataset
from repro.windows.repeat import iter_evaluation_positions

pytestmark = pytest.mark.bench

#: Heavy-window evaluation regime (the paper's Fig 12 varies |W|).
BENCH_WINDOW = WindowConfig(window_size=250, min_gap=10)

#: Dense-target, diverse-window generator: low explore keeps ~85% of
#: events repeats (many evaluation targets per position walked), while
#: near-flat frequency/recency exponents and uniform explore weights
#: spread those repeats over many distinct items (large candidate sets).
BENCH_SYNTH = SyntheticConfig(
    name="engine-bench",
    n_users=4,
    n_items=4000,
    sequence_length_range=(1400, 1800),
    catalog_size_range=(300, 400),
    zipf_exponent=0.7,
    p_explore_range=(0.2, 0.3),
    memory_span=240,
    frequency_exponent=0.05,
    recency_exponent=0.05,
    explore_weight_exponent=0.0,
)

TOP_N = 10
REPS = 3


@pytest.fixture(scope="module")
def bench_split():
    return temporal_split(generate_dataset(BENCH_SYNTH, 101))


def _per_query_walk(model, split, window, k=TOP_N):
    """The seed evaluation loop: score + stable top-k, one call per target."""
    n_queries = 0
    for user in range(split.n_users):
        sequence = split.full_sequence(user)
        boundary = split.train_boundary(user)
        for t, candidates in iter_evaluation_positions(
            sequence, boundary, window.window_size, window.min_gap
        ):
            scores = model.score(sequence, candidates, t)
            np.argsort(-np.asarray(scores), kind="stable")[:k]
            n_queries += 1
    return n_queries


def _batched_walk(model, split, window, k=TOP_N):
    """The engine pipeline: collect queries, answer each user in one call."""
    n_queries = 0
    for user in range(split.n_users):
        sequence = split.full_sequence(user)
        queries = collect_queries(
            sequence,
            split.train_boundary(user),
            window.window_size,
            window.min_gap,
            user=user,
        )
        if queries:
            model.recommend_batch(sequence, queries, k)
            n_queries += len(queries)
    return n_queries


def _best_of(fn, *args, reps=REPS):
    best, result = float("inf"), None
    for _ in range(reps):
        start = time.perf_counter()
        result = fn(*args)
        best = min(best, time.perf_counter() - start)
    return best, result


def _measure(model, split):
    per_query_s, n_per_query = _best_of(
        _per_query_walk, model, split, BENCH_WINDOW
    )
    batched_s, n_batched = _best_of(_batched_walk, model, split, BENCH_WINDOW)
    assert n_per_query == n_batched > 0
    return per_query_s, batched_s, n_per_query


def test_bench_engine_speedup(bench_split, bench_record):
    tsppr = TSPPRRecommender(TSPPRConfig(max_epochs=1000, seed=3))
    tsppr.fit(bench_split, BENCH_WINDOW)
    recency = RecencyRecommender()
    recency.fit(bench_split, BENCH_WINDOW)

    report = []
    speedups = {}
    for name, model in (("TS-PPR", tsppr), ("Recency", recency)):
        per_query_s, batched_s, n_queries = _measure(model, bench_split)
        speedups[name] = per_query_s / batched_s
        report.append(
            f"{name}: {n_queries} queries, per-query {per_query_s:.3f}s "
            f"({1e3 * per_query_s / n_queries:.3f} ms/q), batched "
            f"{batched_s:.3f}s ({1e3 * batched_s / n_queries:.3f} ms/q), "
            f"speedup {speedups[name]:.2f}x"
        )
        bench_record(
            "engine",
            f"{name.lower().replace('-', '')}_scoring",
            per_query_s=round(per_query_s, 3),
            batched_s=round(batched_s, 3),
            speedup=round(speedups[name], 3),
            n_queries=n_queries,
        )
    print()
    for line in report:
        print(line)

    # The headline guard: vectorized TS-PPR scoring holds a wide margin
    # over the per-query walk (measured ~3.5x on the reference runner).
    assert speedups["TS-PPR"] >= 3.0, report[0]
    # Recency's kernel is trivial either way; batched must still win.
    assert speedups["Recency"] > 1.0, report[1]
