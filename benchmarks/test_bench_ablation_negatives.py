"""Ablation bench: pre-sample budget S=10 vs an S=40 re-sampling proxy.

The paper pre-samples S negatives per positive to make feature
extraction affordable, accepting an information loss versus sampling
fresh negatives every epoch. Quadrupling S approximates the
fully-resampled regime; the check mirrors Fig 10's conclusion that the
pre-sample loss is small (accuracy moves by < 0.1 MaAP@10).
"""

from repro.evaluation.protocol import evaluate_recommender
from repro.experiments.common import FAST_SCALE, build_split, default_config
from repro.models.tsppr import TSPPRRecommender


def _evaluate(n_negatives):
    split = build_split("gowalla", FAST_SCALE)
    config = default_config(
        "gowalla", FAST_SCALE, n_negative_samples=n_negatives
    )
    model = TSPPRRecommender(config).fit(split)
    return evaluate_recommender(model, split)


def test_bench_ablation_negative_budget(benchmark):
    small = _evaluate(10)
    large = benchmark.pedantic(lambda: _evaluate(40), rounds=1, iterations=1)
    print(
        f"\nnegatives ablation MaAP@10: S=10 -> {small.maap[10]:.4f}, "
        f"S=40 -> {large.maap[10]:.4f}"
    )
    assert abs(large.maap[10] - small.maap[10]) < 0.1
