"""Bench: regenerate Table 5 (STREC + TS-PPR combination).

Shape checks: STREC's switch accuracy lands in the paper's 0.6-0.9
band; conditional MaAP grows with the cut-off; the joint product is a
valid probability.
"""


def test_bench_table5(benchmark, run_artifact):
    result = benchmark.pedantic(
        lambda: run_artifact("table5"), rounds=1, iterations=1
    )
    assert len(result.rows) == 2
    for row in result.rows:
        assert 0.55 <= row["STREC"] <= 0.95
        assert row["MaAP@1"] <= row["MaAP@5"] <= row["MaAP@10"]
        joint = row["STREC"] * row["MaAP@10"]
        assert 0.0 < joint < 1.0
