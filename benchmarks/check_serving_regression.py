#!/usr/bin/env python
"""Fail CI when the in-flight bursty tail regresses past the baseline.

Compares the freshly measured ``tsppr_bursty_inflight.p99_ms`` in
``benchmarks/BENCH_serving.json`` (written by the serving bench that
just ran) against the *committed* copy of the same file — the baseline
the PR started from — and exits non-zero when the fresh p99 exceeds the
baseline by more than the tolerance (default 20%, shared-runner noise
included).

Usage::

    python benchmarks/check_serving_regression.py [--tolerance 1.2] \
        [--baseline-ref HEAD]

Exit codes: 0 = within tolerance (or no baseline to compare against —
the first run that records the metric cannot regress), 1 = regression,
2 = the fresh measurement file is missing or lacks the metric (the
bench did not run).
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

METRIC_KEY = "tsppr_bursty_inflight"
FIELD = "p99_ms"
BENCH_FILE = Path(__file__).resolve().parent / "BENCH_serving.json"


def load_metric(payload: dict) -> float | None:
    """``results.tsppr_bursty_inflight.p99_ms`` or None if absent."""
    entry = payload.get("results", {}).get(METRIC_KEY, {})
    value = entry.get(FIELD)
    return float(value) if isinstance(value, (int, float)) else None


def baseline_payload(ref: str) -> dict | None:
    """The committed BENCH_serving.json at ``ref``, or None if absent."""
    relative = BENCH_FILE.relative_to(BENCH_FILE.parent.parent)
    try:
        blob = subprocess.run(
            ["git", "show", f"{ref}:{relative.as_posix()}"],
            cwd=BENCH_FILE.parent.parent,
            capture_output=True,
            text=True,
            check=True,
        ).stdout
    except (subprocess.CalledProcessError, FileNotFoundError):
        return None
    try:
        return json.loads(blob)
    except json.JSONDecodeError:
        return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tolerance",
        type=float,
        default=1.2,
        help="fail when fresh p99 > baseline p99 * tolerance",
    )
    parser.add_argument(
        "--baseline-ref",
        default="HEAD",
        help="git ref whose committed BENCH_serving.json is the baseline",
    )
    args = parser.parse_args(argv)

    if not BENCH_FILE.exists():
        print(f"regression check: {BENCH_FILE} missing — run the serving "
              "bench first", file=sys.stderr)
        return 2
    fresh = load_metric(json.loads(BENCH_FILE.read_text()))
    if fresh is None:
        print(f"regression check: fresh {METRIC_KEY}.{FIELD} missing from "
              f"{BENCH_FILE.name} — run the serving bench first",
              file=sys.stderr)
        return 2

    committed = baseline_payload(args.baseline_ref)
    baseline = load_metric(committed) if committed else None
    if baseline is None:
        print(f"regression check: no committed {METRIC_KEY}.{FIELD} at "
              f"{args.baseline_ref} — nothing to regress against; passing")
        return 0

    bound = baseline * args.tolerance
    verdict = "REGRESSION" if fresh > bound else "ok"
    print(
        f"regression check [{verdict}]: in-flight bursty {FIELD} fresh "
        f"{fresh:.3f} vs baseline {baseline:.3f} at {args.baseline_ref} "
        f"(bound {bound:.3f} = baseline x {args.tolerance})"
    )
    return 1 if fresh > bound else 0


if __name__ == "__main__":
    sys.exit(main())
