#!/usr/bin/env python
"""Fail CI when the in-flight bursty tail regresses past the baseline.

Compares the freshly measured ``tsppr_bursty_inflight.p99_ms`` in
``benchmarks/BENCH_serving.json`` (written by the serving bench that
just ran) against the *committed* copy of the same file — the baseline
the PR started from — and exits non-zero when the fresh p99 exceeds the
baseline by more than the tolerance (default 20%, shared-runner noise
included).

Usage::

    python benchmarks/check_serving_regression.py [--tolerance 1.2] \
        [--baseline-ref HEAD]
    python benchmarks/check_serving_regression.py --update-baseline

Every failure mode is a one-line diagnosis, never a traceback: a
missing or malformed fresh file, a fresh file whose schema lacks the
guarded metric, and a missing/malformed/schema-mismatched baseline each
say exactly what happened and what to do. ``--update-baseline``
normalizes the fresh measurement file in place (sorted keys, so diffs
stay reviewable) and exits 0 — commit the result to accept the new
numbers as the baseline.

Exit codes: 0 = within tolerance (or no baseline to compare against —
the first run that records the metric cannot regress), 1 = regression,
2 = the fresh measurement file is missing, malformed, or lacks the
metric (the bench did not run or its schema drifted).
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

METRIC_KEY = "tsppr_bursty_inflight"
FIELD = "p99_ms"
DEFAULT_BENCH_FILE = Path(__file__).resolve().parent / "BENCH_serving.json"


def load_metric(payload: object) -> float | None:
    """``results.tsppr_bursty_inflight.p99_ms`` or None if absent."""
    if not isinstance(payload, dict):
        return None
    results = payload.get("results")
    if not isinstance(results, dict):
        return None
    entry = results.get(METRIC_KEY)
    if not isinstance(entry, dict):
        return None
    value = entry.get(FIELD)
    return float(value) if isinstance(value, (int, float)) else None


def fresh_payload(bench_file: Path) -> tuple[dict | None, str | None]:
    """The fresh measurement document, or ``(None, why it's unusable)``."""
    if not bench_file.exists():
        return None, f"{bench_file} missing — run the serving bench first"
    try:
        payload = json.loads(bench_file.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return None, (
            f"{bench_file.name} is not readable JSON ({exc}) — re-run the "
            f"serving bench to regenerate it"
        )
    if not isinstance(payload, dict):
        return None, (
            f"{bench_file.name} holds a JSON {type(payload).__name__}, "
            f"expected an object — re-run the serving bench"
        )
    return payload, None


def baseline_payload(ref: str, bench_file: Path) -> tuple[dict | None, str]:
    """The committed bench file at ``ref`` and a note when unusable."""
    relative = bench_file.relative_to(bench_file.parent.parent)
    try:
        blob = subprocess.run(
            ["git", "show", f"{ref}:{relative.as_posix()}"],
            cwd=bench_file.parent.parent,
            capture_output=True,
            text=True,
            check=True,
        ).stdout
    except (subprocess.CalledProcessError, FileNotFoundError):
        return None, f"no committed {bench_file.name} at {ref}"
    try:
        payload = json.loads(blob)
    except json.JSONDecodeError as exc:
        return None, (
            f"committed {bench_file.name} at {ref} is not valid JSON ({exc})"
        )
    if not isinstance(payload, dict):
        return None, (
            f"committed {bench_file.name} at {ref} is not a JSON object"
        )
    return payload, ""


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tolerance",
        type=float,
        default=1.2,
        help="fail when fresh p99 > baseline p99 * tolerance",
    )
    parser.add_argument(
        "--baseline-ref",
        default="HEAD",
        help="git ref whose committed BENCH_serving.json is the baseline",
    )
    parser.add_argument(
        "--bench-file",
        type=Path,
        default=DEFAULT_BENCH_FILE,
        help="fresh measurement file (default: benchmarks/BENCH_serving.json)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="normalize the fresh measurement file in place and exit 0; "
        "commit it to accept the fresh numbers as the new baseline",
    )
    args = parser.parse_args(argv)

    payload, problem = fresh_payload(args.bench_file)
    if payload is None:
        print(f"regression check: {problem}", file=sys.stderr)
        return 2
    fresh = load_metric(payload)
    if fresh is None:
        print(
            f"regression check: fresh {METRIC_KEY}.{FIELD} missing from "
            f"{args.bench_file.name} (schema mismatch or partial bench "
            f"run) — run the serving bench, then retry",
            file=sys.stderr,
        )
        return 2

    if args.update_baseline:
        args.bench_file.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        print(
            f"regression check: baseline updated — {args.bench_file.name} "
            f"now records {METRIC_KEY}.{FIELD} = {fresh:.3f}; commit it to "
            f"make this the baseline"
        )
        return 0

    committed, note = baseline_payload(args.baseline_ref, args.bench_file)
    baseline = load_metric(committed) if committed is not None else None
    if baseline is None:
        if committed is not None:
            note = (
                f"committed {args.bench_file.name} at {args.baseline_ref} "
                f"lacks {METRIC_KEY}.{FIELD} (schema mismatch)"
            )
        print(
            f"regression check: {note} — nothing to regress against; passing"
        )
        return 0

    bound = baseline * args.tolerance
    verdict = "REGRESSION" if fresh > bound else "ok"
    print(
        f"regression check [{verdict}]: in-flight bursty {FIELD} fresh "
        f"{fresh:.3f} vs baseline {baseline:.3f} at {args.baseline_ref} "
        f"(bound {bound:.3f} = baseline x {args.tolerance})"
    )
    if fresh > bound:
        print(
            "  to accept the fresh numbers instead, run "
            "'python benchmarks/check_serving_regression.py "
            "--update-baseline' and commit the file",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
