"""Ablation bench: Survival scoring mode — "due" vs "hazard".

``mode="due"`` reproduces the continuous-time usage the paper evaluated
(estimate each item's return time, recommend what is due); the natively
discrete ``mode="hazard"`` ranks by next-step conditional return
probability. On discrete consumption steps, hazard mode is strictly
better-informed — quantifying the paper's explanation that
"discretization may greatly decrease the performance of Survival".
"""

from repro.evaluation.protocol import evaluate_recommender
from repro.experiments.common import FAST_SCALE, build_split
from repro.models.survival import SurvivalRecommender


def _evaluate(mode):
    split = build_split("lastfm", FAST_SCALE)
    model = SurvivalRecommender(mode=mode).fit(split)
    return evaluate_recommender(model, split)


def test_bench_ablation_survival_mode(benchmark):
    due = _evaluate("due")
    hazard = benchmark.pedantic(
        lambda: _evaluate("hazard"), rounds=1, iterations=1
    )
    print(
        f"\nsurvival ablation MaAP@10: due={due.maap[10]:.4f} "
        f"hazard={hazard.maap[10]:.4f}"
    )
    # The discretization-aware scorer dominates the continuous-style one.
    assert hazard.maap[10] > due.maap[10]
    assert hazard.maap[5] > due.maap[5]
