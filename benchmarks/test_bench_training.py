"""Bench: end-to-end ``fit()`` throughput of the vectorized training engine.

The guard runs the complete TS-PPR training pipeline twice on the same
split — once with ``training_engine="scalar"`` (the seed-style
reference: per-anchor quadruple sampling, per-anchor feature extraction,
one-update-at-a-time SGD) and once with ``training_engine="vectorized"``
(incremental-session sampling, session-walk feature cache, block SGD
with dependency-batched kernels) — and requires the vectorized pipeline
to be **>= 3x faster end to end** while producing bit-identical
parameters.

The workload is a many-user regime: conflict-free SGD batch sizes grow
roughly with the square root of the scheduled user count, so 800 users
keep the dependency batches large, while short sequences and ``S = 4``
negatives keep the (lower-leverage) sampling/cache phases from diluting
the SGD phase, which dominates a converged training run exactly as it
does at the paper's full scale.

Runs outside tier-1: ``testpaths`` pins the default run to ``tests/``,
and the module is additionally marked ``bench`` so explicit benchmark
invocations can select it with ``pytest benchmarks -m bench``. The
measurement is recorded to ``benchmarks/BENCH_training.json`` through
the ``bench_record`` fixture for cross-PR comparison.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.config import TSPPRConfig, WindowConfig
from repro.data.split import temporal_split
from repro.models.tsppr import TSPPRRecommender
from repro.synth.base import SyntheticConfig, generate_dataset

pytestmark = pytest.mark.bench

BENCH_WINDOW = WindowConfig(window_size=100, min_gap=10)

#: Many short sequences: the user count drives SGD batch sizes, the
#: moderate item skew bounds hot-item conflict chains, and per-user
#: catalogs of ~100 items keep windows rich in eligible negatives.
BENCH_SYNTH = SyntheticConfig(
    name="training-bench",
    n_users=800,
    n_items=5000,
    sequence_length_range=(120, 180),
    catalog_size_range=(80, 120),
    zipf_exponent=0.5,
    p_explore_range=(0.3, 0.4),
    memory_span=100,
    frequency_exponent=0.6,
    recency_exponent=0.6,
    explore_weight_exponent=0.1,
)

REPS = 2


def _config(engine: str) -> TSPPRConfig:
    return TSPPRConfig(
        max_epochs=600_000,
        seed=3,
        n_negative_samples=4,
        training_engine=engine,
    )


def _best_fit(split, engine):
    best, model = float("inf"), None
    for _ in range(REPS):
        model = TSPPRRecommender(_config(engine))
        start = time.perf_counter()
        model.fit(split, BENCH_WINDOW)
        best = min(best, time.perf_counter() - start)
    return best, model


def test_bench_training_speedup(bench_record):
    split = temporal_split(generate_dataset(BENCH_SYNTH, 7))
    scalar_s, scalar_model = _best_fit(split, "scalar")
    vectorized_s, vectorized_model = _best_fit(split, "vectorized")

    # Speed means nothing if the engines diverge: the vectorized
    # pipeline must reproduce the scalar run bit for bit.
    assert np.array_equal(
        scalar_model.user_factors_, vectorized_model.user_factors_
    )
    assert np.array_equal(
        scalar_model.item_factors_, vectorized_model.item_factors_
    )
    assert np.array_equal(scalar_model.mappings_, vectorized_model.mappings_)
    assert scalar_model.sgd_result_ == vectorized_model.sgd_result_

    n_updates = scalar_model.sgd_result_.n_updates
    speedup = scalar_s / vectorized_s
    report = (
        f"fit() on {split.n_users} users, "
        f"{scalar_model.n_quadruples_} quadruples, {n_updates} updates: "
        f"scalar {scalar_s:.2f}s, vectorized {vectorized_s:.2f}s, "
        f"speedup {speedup:.2f}x"
    )
    print()
    print(report)
    bench_record(
        "training",
        "tsppr_fit_end_to_end",
        scalar_s=round(scalar_s, 3),
        vectorized_s=round(vectorized_s, 3),
        speedup=round(speedup, 3),
        n_quadruples=scalar_model.n_quadruples_,
        n_updates=n_updates,
    )

    # The headline guard: the vectorized training engine beats the
    # seed-style scalar pipeline end to end (measured ~3.4x on the
    # reference runner).
    assert speedup >= 3.0, report
