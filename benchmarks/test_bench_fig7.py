"""Bench: regenerate Fig 7 (feature-importance ablation).

Shape checks: on the Gowalla-like data, every single-feature removal
costs accuracy relative to "All" (within a small tolerance — the paper's
IP/RE/DF drops are slight), and removing a feature never *helps* by a
large margin.
"""


def _score(rows, dataset, variant):
    for row in rows:
        if row["Data set"] == dataset and row["Variant"] == variant:
            return row["MaAP@10"]
    raise KeyError((dataset, variant))


def test_bench_fig7(benchmark, run_artifact):
    result = benchmark.pedantic(
        lambda: run_artifact("fig7"), rounds=1, iterations=1
    )
    rows = result.rows
    assert len(rows) == 10  # 2 datasets x (All + 4 removals)
    for dataset in ("Gowalla-like", "Lastfm-like"):
        all_features = _score(rows, dataset, "All")
        for variant in ("-IP", "-IR", "-RE", "-DF"):
            ablated = _score(rows, dataset, variant)
            # Removing a feature must not help much (paper: it hurts).
            assert ablated <= all_features + 0.03
