"""Bench: regenerate Table 4 (default hyper-parameter record)."""


def test_bench_table4(benchmark, run_artifact):
    result = benchmark.pedantic(
        lambda: run_artifact("table4"), rounds=1, iterations=1
    )
    by_dataset = {row["Data set"]: row for row in result.rows}
    assert by_dataset["Gowalla"]["λ"] == 0.01
    assert by_dataset["Gowalla"]["γ"] == 0.05
    assert by_dataset["Lastfm"]["λ"] == 0.001
    assert by_dataset["Lastfm"]["γ"] == 0.1
    for row in result.rows:
        assert row["K"] == 40
        assert row["S"] == 10
        assert row["Ω"] == 10
