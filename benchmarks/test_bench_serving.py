"""Bench: micro-batched serving throughput vs one-request-at-a-time.

The guard drives the same held-out event stream through two
:class:`~repro.serving.service.RecommendService` instances that differ
only in batching policy:

* **naive** — ``max_batch=1``: every recommend request is scored alone,
  so each one pays the full session walk to its position;
* **micro-batched** — ``max_batch=64`` with a short straggler wait:
  concurrent requests coalesce, group by user, and are answered with one
  ``recommend_batch`` call whose ascending-``t`` queries amortize the
  window/feature walk exactly as the offline engine does.

The workload is the engine bench's heavy-window regime (|W| = 250,
dense targets, large candidate sets) where the walk dominates, and the
driver submits asynchronously (ingest + submit without waiting) so the
queue actually backs up into full batches — the shape a loaded server
sees. The assertion requires **micro-batched >= 3x naive throughput**
for TS-PPR, and both modes must return *identical* recommendation
lists, equal to the offline protocol's (batching is a latency decision,
never an accuracy one).

Measured throughput, latency percentiles (p50/p95/p99 including queue
time), and the speedup are recorded to ``BENCH_serving.json`` via the
session-scoped ``bench_record`` fixture.
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

import numpy as np
import pytest

from repro.config import TSPPRConfig, WindowConfig
from repro.data.split import temporal_split
from repro.evaluation.protocol import collect_queries
from repro.models.tsppr import TSPPRRecommender
from repro.serving.service import ServiceConfig, service_for_split
from repro.synth.base import SyntheticConfig, generate_dataset

pytestmark = pytest.mark.bench

#: Heavy-window serving regime — matches the engine bench.
BENCH_WINDOW = WindowConfig(window_size=250, min_gap=10)

#: Dense-target generator — the engine bench's recipe: long sequences
#: make the per-request session walk the dominant cost the micro-batch
#: amortizes away.
BENCH_SYNTH = SyntheticConfig(
    name="serving-bench",
    n_users=4,
    n_items=4000,
    sequence_length_range=(1400, 1800),
    catalog_size_range=(300, 400),
    zipf_exponent=0.7,
    p_explore_range=(0.2, 0.3),
    memory_span=240,
    frequency_exponent=0.05,
    recency_exponent=0.05,
    explore_weight_exponent=0.0,
)

TOP_N = 10
REPS = 2


@pytest.fixture(scope="module")
def bench_split():
    return temporal_split(generate_dataset(BENCH_SYNTH, 101))


@pytest.fixture(scope="module")
def bench_model(bench_split):
    model = TSPPRRecommender(TSPPRConfig(max_epochs=1000, seed=3))
    model.fit(bench_split, BENCH_WINDOW)
    return model


def _interleaved_stream(split) -> List[Tuple[int, int]]:
    """Round-robin the users' held-out suffixes, like live traffic."""
    per_user = {
        user: split.full_sequence(user).items[
            split.train_boundary(user):
        ].tolist()
        for user in range(split.n_users)
    }
    stream: List[Tuple[int, int]] = []
    longest = max(len(items) for items in per_user.values())
    for step in range(longest):
        for user in range(split.n_users):
            if step < len(per_user[user]):
                stream.append((user, per_user[user][step]))
    return stream


def _drive(model, split, stream, max_batch, max_wait_ms):
    """Async replay: submit-without-waiting + ingest, then drain.

    Returns (elapsed seconds, per-user answer lists, per-request
    latencies in seconds).
    """
    config = ServiceConfig(
        window=BENCH_WINDOW,
        default_k=TOP_N,
        max_batch=max_batch,
        max_wait_ms=max_wait_ms,
        n_items=split.n_items,
    )
    answers: Dict[int, List[List[int]]] = {u: [] for u in range(split.n_users)}
    pending = []
    with service_for_split(model, split, config=config) as service:
        store = service.store
        start = time.perf_counter()
        for user, item in stream:
            with store.lock:
                session = store.get(user)
                is_target = session.is_next_target(item) and bool(
                    session.candidates()
                )
            if is_target:
                pending.append((user, service.submit(user, k=TOP_N)))
            service.ingest(user, item)
        for user, handle in pending:
            answers[user].append(handle.result(timeout=600.0).items)
        elapsed = time.perf_counter() - start
        latencies = [handle.result().latency_s for _, handle in pending]
    return elapsed, answers, latencies


def _offline_reference(model, split) -> Dict[int, List[List[int]]]:
    """The offline protocol's answers for the same target positions."""
    reference: Dict[int, List[List[int]]] = {}
    for user in range(split.n_users):
        sequence = split.full_sequence(user)
        queries = collect_queries(
            sequence,
            split.train_boundary(user),
            BENCH_WINDOW.window_size,
            BENCH_WINDOW.min_gap,
            user=user,
        )
        reference[user] = (
            model.recommend_batch(sequence, queries, TOP_N) if queries else []
        )
    return reference


def _percentiles_ms(latencies: List[float]) -> Dict[str, float]:
    values = np.asarray(latencies, dtype=np.float64) * 1e3
    return {
        "p50_ms": round(float(np.percentile(values, 50)), 3),
        "p95_ms": round(float(np.percentile(values, 95)), 3),
        "p99_ms": round(float(np.percentile(values, 99)), 3),
    }


def _best_drive(model, split, stream, max_batch, max_wait_ms):
    best = (float("inf"), None, None)
    for _ in range(REPS):
        run = _drive(model, split, stream, max_batch, max_wait_ms)
        if run[0] < best[0]:
            best = run
    return best


def test_bench_serving_speedup(bench_split, bench_model, bench_record):
    stream = _interleaved_stream(bench_split)

    naive_s, naive_answers, naive_lat = _best_drive(
        bench_model, bench_split, stream, max_batch=1, max_wait_ms=0.0
    )
    batched_s, batched_answers, batched_lat = _best_drive(
        bench_model, bench_split, stream, max_batch=64, max_wait_ms=2.0
    )

    # Accuracy first: batching must never change a single answer.
    reference = _offline_reference(bench_model, bench_split)
    assert batched_answers == naive_answers
    assert batched_answers == reference

    n_requests = len(naive_lat)
    assert n_requests == len(batched_lat) > 0
    speedup = naive_s / batched_s
    report = (
        f"serving: {n_requests} requests over {len(stream)} events; "
        f"naive {naive_s:.3f}s ({n_requests / naive_s:.1f} req/s), "
        f"micro-batched {batched_s:.3f}s "
        f"({n_requests / batched_s:.1f} req/s), speedup {speedup:.2f}x"
    )
    print()
    print(report)

    for name, elapsed, latencies in (
        ("naive", naive_s, naive_lat),
        ("micro_batched", batched_s, batched_lat),
    ):
        bench_record(
            "serving",
            f"tsppr_{name}",
            elapsed_s=round(elapsed, 3),
            requests=n_requests,
            events=len(stream),
            requests_per_s=round(n_requests / elapsed, 1),
            **_percentiles_ms(latencies),
        )
    bench_record(
        "serving",
        "tsppr_speedup",
        speedup=round(speedup, 3),
        window_size=BENCH_WINDOW.window_size,
        min_gap=BENCH_WINDOW.min_gap,
        max_batch=64,
        max_wait_ms=2.0,
    )

    # The headline guard: coalescing into per-user recommend_batch calls
    # must amortize the session walk by a wide margin.
    assert speedup >= 3.0, report
