"""Bench: serving throughput and bursty-arrival tail latency by mode.

Two guards over the same heavy-window TS-PPR workload (|W| = 250, dense
targets, large candidate sets — the engine bench's regime where the
session walk dominates):

* **Flood throughput** — the held-out stream is submitted
  asynchronously (ingest + submit without waiting) so the queue backs
  up, and three services race: **naive** (``max_batch=1``),
  **micro-batched** (``max_batch=64``, 2ms straggler wait), and
  **in-flight** (continuously fed packed batch). Both batched modes
  must reach **>= 3x naive throughput**, and all three must return
  answers identical to the offline protocol's — batching is a latency
  decision, never an accuracy one.
* **Bursty tail** — the *same* seeded bursty arrival schedule (calm
  Poisson singles punctuated by simultaneous bursts, from the shared
  ``loadgen`` fixture) is replayed against micro-batch and in-flight
  services. Micro-batching pays its straggler wait on every calm
  single and drain-then-refill head-of-line time on every burst; the
  in-flight loop admits at kernel boundaries and waits for nothing.
  The guard requires in-flight p50 **and** p99 below micro-batch's at
  equal-or-better completed throughput.

Throughput, p50/p95/p99 (including queue time), and the speedups are
recorded to ``BENCH_serving.json`` via the session-scoped
``bench_record`` fixture; CI's bench-smoke job diffs the in-flight
bursty p99 against the committed baseline.
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

import numpy as np
import pytest

from repro.config import TSPPRConfig, WindowConfig
from repro.data.split import temporal_split
from repro.evaluation.protocol import collect_queries
from repro.models.tsppr import TSPPRRecommender
from repro.serving.service import ServiceConfig, service_for_split
from repro.synth.base import SyntheticConfig, generate_dataset

pytestmark = pytest.mark.bench

#: Heavy-window serving regime — matches the engine bench.
BENCH_WINDOW = WindowConfig(window_size=250, min_gap=10)

#: Dense-target generator — the engine bench's recipe: long sequences
#: make the per-request session walk the dominant cost that batching
#: amortizes away.
BENCH_SYNTH = SyntheticConfig(
    name="serving-bench",
    n_users=4,
    n_items=4000,
    sequence_length_range=(1400, 1800),
    catalog_size_range=(300, 400),
    zipf_exponent=0.7,
    p_explore_range=(0.2, 0.3),
    memory_span=240,
    frequency_exponent=0.05,
    recency_exponent=0.05,
    explore_weight_exponent=0.0,
)

TOP_N = 10
REPS = 2
TAIL_REPS = 4

#: Bursty-schedule shape: calm Poisson singles at 400 Hz, a 16-request
#: burst after every 32 calm arrivals. The population is calm-heavy and
#: kernels are short relative to the micro-batcher's fixed 2ms
#: straggler wait, so the wait is the dominant per-request constant:
#: every calm single pays it in full, and singles colliding with a
#: burst drain stack it on top of head-of-line time. The in-flight loop
#: pays neither — requests admit at the next kernel boundary — which is
#: where continuous admission separates from drain-then-refill at every
#: percentile. (Burst-heavy schedules instead make both modes
#: scoring-bound on the same per-user kernels and their tails
#: converge.)
BURSTY = dict(calm_rate_hz=400.0, burst_size=16, calm_between=32)
BURSTY_EVENTS = 840


@pytest.fixture(scope="module")
def bench_split():
    return temporal_split(generate_dataset(BENCH_SYNTH, 101))


@pytest.fixture(scope="module")
def bench_model(bench_split):
    model = TSPPRRecommender(TSPPRConfig(max_epochs=1000, seed=3))
    model.fit(bench_split, BENCH_WINDOW)
    return model


def _interleaved_stream(split) -> List[Tuple[int, int]]:
    """Round-robin the users' held-out suffixes, like live traffic."""
    per_user = {
        user: split.full_sequence(user).items[
            split.train_boundary(user):
        ].tolist()
        for user in range(split.n_users)
    }
    stream: List[Tuple[int, int]] = []
    longest = max(len(items) for items in per_user.values())
    for step in range(longest):
        for user in range(split.n_users):
            if step < len(per_user[user]):
                stream.append((user, per_user[user][step]))
    return stream


def _service_config(split, **overrides) -> ServiceConfig:
    return ServiceConfig(
        window=BENCH_WINDOW,
        default_k=TOP_N,
        n_items=split.n_items,
        **overrides,
    )


def _drive(model, split, stream, arrival_times=None, **config_overrides):
    """Replay ``stream`` through one service; optionally paced.

    Without ``arrival_times`` this is the flood driver: submit-without-
    waiting + ingest as fast as the loop runs, then drain — the maximum-
    throughput shape. With ``arrival_times`` (one offset per event, from
    the shared load generator) each event waits for its scheduled
    arrival, so every mode sees the identical arrival process.

    Returns (elapsed seconds, per-user answer lists, per-request
    latencies in seconds).
    """
    config = _service_config(split, **config_overrides)
    answers: Dict[int, List[List[int]]] = {u: [] for u in range(split.n_users)}
    pending = []
    with service_for_split(model, split, config=config) as service:
        store = service.store
        start = time.perf_counter()
        for index, (user, item) in enumerate(stream):
            if arrival_times is not None:
                delay = arrival_times[index] - (time.perf_counter() - start)
                if delay > 0:
                    time.sleep(delay)
            with store.lock:
                session = store.get(user)
                is_target = session.is_next_target(item) and bool(
                    session.candidates()
                )
            if is_target:
                pending.append((user, service.submit(user, k=TOP_N)))
            service.ingest(user, item)
        for user, handle in pending:
            answers[user].append(handle.result(timeout=600.0).items)
        elapsed = time.perf_counter() - start
        latencies = [handle.result().latency_s for _, handle in pending]
    return elapsed, answers, latencies


def _offline_reference(model, split) -> Dict[int, List[List[int]]]:
    """The offline protocol's answers for the same target positions."""
    reference: Dict[int, List[List[int]]] = {}
    for user in range(split.n_users):
        sequence = split.full_sequence(user)
        queries = collect_queries(
            sequence,
            split.train_boundary(user),
            BENCH_WINDOW.window_size,
            BENCH_WINDOW.min_gap,
            user=user,
        )
        reference[user] = (
            model.recommend_batch(sequence, queries, TOP_N) if queries else []
        )
    return reference


def _best_drive(model, split, stream, arrival_times=None, **overrides):
    """Best of ``REPS`` by elapsed time — the flood-throughput metric."""
    best = (float("inf"), None, None)
    for _ in range(REPS):
        run = _drive(model, split, stream, arrival_times, **overrides)
        if run[0] < best[0]:
            best = run
    return best


def _paired_tail_drives(model, split, stream, arrival_times, configs):
    """Best of ``TAIL_REPS`` by p99 per config — the paced-tail metric.

    Paced runs all take the same wall-clock (the schedule dictates it),
    so selecting by elapsed time would pick a random rep; selecting by
    the guarded percentile suppresses scheduler noise — a single GC or
    OS stall inside one burst elevates ~20 request latencies and owns
    that rep's p99. The configs are *interleaved* within each rep
    (micro, in-flight, micro, in-flight, ...) so slow drift in machine
    load lands on both modes instead of on whichever ran last. Answers
    must agree across reps (and across modes, asserted by the caller).

    Returns ``{name: (elapsed, answers, latencies)}``.
    """
    best = {}
    for _ in range(TAIL_REPS):
        for name, overrides in configs:
            elapsed, answers, latencies = _drive(
                model, split, stream, arrival_times, **overrides
            )
            p99 = np.percentile(np.asarray(latencies, dtype=np.float64), 99)
            prior = best.get(name)
            if prior is not None:
                assert answers == prior[1], "answers changed between reps"
            if prior is None or p99 < prior[3]:
                best[name] = (elapsed, answers, latencies, p99)
    return {name: run[:3] for name, run in best.items()}


def test_bench_serving_speedup(bench_split, bench_model, bench_record, loadgen):
    stream = _interleaved_stream(bench_split)

    naive_s, naive_answers, naive_lat = _best_drive(
        bench_model, bench_split, stream,
        batching="microbatch", max_batch=1, max_wait_ms=0.0,
    )
    micro_s, micro_answers, micro_lat = _best_drive(
        bench_model, bench_split, stream,
        batching="microbatch", max_batch=64, max_wait_ms=2.0,
    )
    inflight_s, inflight_answers, inflight_lat = _best_drive(
        bench_model, bench_split, stream, batching="inflight",
    )

    # Accuracy first: batching must never change a single answer.
    reference = _offline_reference(bench_model, bench_split)
    assert micro_answers == naive_answers
    assert inflight_answers == naive_answers
    assert inflight_answers == reference

    n_requests = len(naive_lat)
    assert n_requests == len(micro_lat) == len(inflight_lat) > 0
    micro_speedup = naive_s / micro_s
    inflight_speedup = naive_s / inflight_s
    report = (
        f"serving: {n_requests} requests over {len(stream)} events; "
        f"naive {naive_s:.3f}s ({n_requests / naive_s:.1f} req/s), "
        f"micro-batched {micro_s:.3f}s ({n_requests / micro_s:.1f} req/s, "
        f"{micro_speedup:.2f}x), in-flight {inflight_s:.3f}s "
        f"({n_requests / inflight_s:.1f} req/s, {inflight_speedup:.2f}x)"
    )
    print()
    print(report)

    for name, elapsed, latencies in (
        ("naive", naive_s, naive_lat),
        ("micro_batched", micro_s, micro_lat),
        ("inflight", inflight_s, inflight_lat),
    ):
        bench_record(
            "serving",
            f"tsppr_{name}",
            elapsed_s=round(elapsed, 3),
            requests=n_requests,
            events=len(stream),
            requests_per_s=round(n_requests / elapsed, 1),
            **loadgen.percentiles_ms(latencies),
        )
    bench_record(
        "serving",
        "tsppr_speedup",
        micro_batched=round(micro_speedup, 3),
        inflight=round(inflight_speedup, 3),
        window_size=BENCH_WINDOW.window_size,
        min_gap=BENCH_WINDOW.min_gap,
        max_batch=64,
        max_wait_ms=2.0,
    )

    # The headline guard: coalescing into per-user recommend_batch calls
    # must amortize the session walk by a wide margin — in both modes.
    assert micro_speedup >= 3.0, report
    assert inflight_speedup >= 3.0, report


def test_bench_serving_bursty_tail(
    bench_split, bench_model, bench_record, loadgen
):
    """p99 under bursty Poisson arrivals: in-flight must beat micro-batch."""
    stream = _interleaved_stream(bench_split)[:BURSTY_EVENTS]
    arrivals = loadgen.bursty_times(len(stream), seed=808, **BURSTY)

    runs = _paired_tail_drives(
        bench_model, bench_split, stream, arrivals,
        [
            ("micro", dict(batching="microbatch", max_batch=64, max_wait_ms=2.0)),
            ("inflight", dict(batching="inflight")),
        ],
    )
    micro_s, micro_answers, micro_lat = runs["micro"]
    inflight_s, inflight_answers, inflight_lat = runs["inflight"]

    assert micro_answers == inflight_answers
    n_requests = len(micro_lat)
    assert n_requests == len(inflight_lat) > 50

    micro = loadgen.percentiles_ms(micro_lat)
    inflight = loadgen.percentiles_ms(inflight_lat)
    micro_rps = n_requests / micro_s
    inflight_rps = n_requests / inflight_s
    report = (
        f"bursty tail: {n_requests} requests over {len(stream)} paced "
        f"events; micro-batch p50 {micro['p50_ms']}ms / "
        f"p99 {micro['p99_ms']}ms at {micro_rps:.1f} req/s, in-flight "
        f"p50 {inflight['p50_ms']}ms / p99 {inflight['p99_ms']}ms at "
        f"{inflight_rps:.1f} req/s"
    )
    print()
    print(report)

    bench_record(
        "serving",
        "tsppr_bursty_microbatch",
        elapsed_s=round(micro_s, 3),
        requests=n_requests,
        requests_per_s=round(micro_rps, 1),
        **micro,
    )
    bench_record(
        "serving",
        "tsppr_bursty_inflight",
        elapsed_s=round(inflight_s, 3),
        requests=n_requests,
        requests_per_s=round(inflight_rps, 1),
        **inflight,
    )
    bench_record(
        "serving",
        "tsppr_bursty_schedule",
        events=len(stream),
        p99_ratio=round(inflight["p99_ms"] / micro["p99_ms"], 3),
        seed=808,
        **BURSTY,
    )

    # The tentpole guard: at the same arrival schedule (equal offered
    # load, equal-or-better completed throughput), continuous admission
    # must cut both the typical latency — calm singles skip the
    # straggler wait entirely — and the bursty tail.
    assert inflight_rps >= 0.9 * micro_rps, report
    assert inflight["p50_ms"] < micro["p50_ms"], report
    assert inflight["p99_ms"] < micro["p99_ms"], report
