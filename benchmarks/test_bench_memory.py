"""Bench: session-memory footprint and rehydration latency by store.

Two guards over a serving-scale population with long histories:

* **Resident bytes per active user** — the same training prefixes are
  held by the dict/list reference store and by the columnar arena;
  deterministic ``deep_sizeof`` accounting (allocator- and RSS-noise
  free) must show the arena **>= 4x** smaller per active user. The
  mmap-backed arena's heap residency is recorded alongside for scale —
  its columns live in file pages, not on the heap.
* **Rehydration latency** — an LRU ``SessionStore`` with capacity 1 is
  churned so every ``get`` rebuilds an evicted session. Over the legacy
  callable provider a rebuild re-fetches and re-copies the user's full
  base history; over the arena it seeds from an O(window) suffix
  gather. The guard requires the arena rehydration p99 at or below the
  callable path's, with bit-identical fingerprints.

Both are recorded to ``BENCH_memory.json`` via the session-scoped
``bench_record`` fixture, next to the serving/cluster trajectories.
"""

from __future__ import annotations

import time
from typing import Dict, List

import pytest

from repro.config import WindowConfig
from repro.data.split import temporal_split
from repro.serving.state import SessionStore
from repro.store import store_memory_profile
from repro.synth.base import SyntheticConfig, generate_dataset

pytestmark = pytest.mark.bench

#: Long histories over a vocabulary well past the small-int cache: the
#: regime where pointer-per-event representations pay full price.
MEM_SYNTH = SyntheticConfig(
    name="memory-bench",
    n_users=96,
    n_items=4000,
    sequence_length_range=(400, 600),
    catalog_size_range=(120, 200),
    zipf_exponent=0.7,
    p_explore_range=(0.2, 0.3),
    memory_span=120,
    frequency_exponent=0.05,
    recency_exponent=0.05,
    explore_weight_exponent=0.0,
)

WINDOW = WindowConfig()
CHURN_USERS = 24
CHURN_ROUNDS = 30


@pytest.fixture(scope="module")
def mem_split():
    return temporal_split(generate_dataset(MEM_SYNTH, 77))


def test_resident_bytes_per_user(bench_record, mem_split, tmp_path):
    users = range(mem_split.n_users)
    profiles = {}
    for kind in ("dict", "arena", "arena-mmap"):
        store = mem_split.history_store(
            kind=kind,
            base="train",
            directory=(
                str(tmp_path / "arena") if kind == "arena-mmap" else None
            ),
        )
        profiles[kind] = store_memory_profile(store, users)
    ratio = (
        profiles["dict"]["bytes_per_user"]
        / profiles["arena"]["bytes_per_user"]
    )
    bench_record(
        "memory",
        "resident_bytes",
        dict_bytes_per_user=round(profiles["dict"]["bytes_per_user"], 1),
        arena_bytes_per_user=round(profiles["arena"]["bytes_per_user"], 1),
        arena_mmap_heap_bytes_per_user=round(
            profiles["arena-mmap"]["bytes_per_user"], 1
        ),
        active_users=int(profiles["arena"]["active_users"]),
        dict_over_arena=round(ratio, 2),
    )
    print(
        f"\nresident bytes/user: dict {profiles['dict']['bytes_per_user']:.0f}"
        f", arena {profiles['arena']['bytes_per_user']:.0f}"
        f" ({ratio:.1f}x), arena-mmap heap "
        f"{profiles['arena-mmap']['bytes_per_user']:.0f}"
    )
    assert ratio >= 4.0, (
        f"arena is only {ratio:.2f}x smaller per user than the dict store"
    )


def _churn_latencies(session_store: SessionStore, users) -> List[float]:
    latencies: List[float] = []
    for _ in range(CHURN_ROUNDS):
        for user in users:
            start = time.perf_counter()
            session_store.get(user)
            latencies.append(time.perf_counter() - start)
    return latencies


def test_rehydration_latency(bench_record, loadgen, mem_split):
    users = list(range(CHURN_USERS))
    arena_provider = mem_split.history_store(kind="arena", base="train")

    def callable_provider(user: int):
        if 0 <= user < mem_split.n_users:
            return mem_split.train_sequence(user)
        return None

    stores: Dict[str, SessionStore] = {
        name: SessionStore(
            WINDOW.window_size,
            WINDOW.min_gap,
            capacity=1,
            history_provider=provider,
        )
        for name, provider in (
            ("callable", callable_provider),
            ("arena", arena_provider),
        )
    }
    # The two representations must be indistinguishable before they are
    # comparable: same digests for every churned user.
    for user in users:
        assert stores["arena"].state_fingerprint(user) == (
            stores["callable"].state_fingerprint(user)
        )
    tails = {
        name: loadgen.percentiles_ms(_churn_latencies(store, users))
        for name, store in stores.items()
    }
    bench_record(
        "memory",
        "rehydration_latency",
        callable_p50_ms=tails["callable"]["p50_ms"],
        callable_p99_ms=tails["callable"]["p99_ms"],
        arena_p50_ms=tails["arena"]["p50_ms"],
        arena_p99_ms=tails["arena"]["p99_ms"],
        churn_gets=CHURN_USERS * CHURN_ROUNDS,
    )
    print(
        f"\nrehydration p99: callable {tails['callable']['p99_ms']:.3f}ms, "
        f"arena {tails['arena']['p99_ms']:.3f}ms"
    )
    assert tails["arena"]["p99_ms"] <= tails["callable"]["p99_ms"], (
        "arena rehydration is slower than the full-copy callable path"
    )
