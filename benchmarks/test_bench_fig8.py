"""Bench: regenerate Fig 8 (sensitivity to λ and γ).

Shape checks: γ = 1 underfits on both datasets (it shrinks the latent
matrices U, V — the paper's "magnitude of U and V is more likely to harm
the effectiveness"); the λ curve is comparatively flat (λ only penalizes
the mappings A_u, and on this substrate the static term compensates —
see EXPERIMENTS.md deviations for how this differs from the paper's
Gowalla λ drop).
"""


def test_bench_fig8(benchmark, run_artifact):
    result = benchmark.pedantic(
        lambda: run_artifact("fig8"), rounds=1, iterations=1
    )
    assert len(result.series) == 8  # 2 datasets x 2 metrics x {λ, γ}
    for dataset in ("Gowalla-like", "Lastfm-like"):
        gamma_values = [v for _, v in result.series[f"{dataset} / MaAP@10 vs γ"]]
        assert gamma_values[-1] < max(gamma_values), (
            f"{dataset}: γ = 1 should underfit"
        )
        lambda_values = [v for _, v in result.series[f"{dataset} / MaAP@10 vs λ"]]
        spread = max(lambda_values) - min(lambda_values)
        assert spread < 0.08, f"{dataset}: λ curve unexpectedly volatile"
