"""Bench: regenerate Fig 11 (sensitivity to the minimum gap Ω).

Shape checks: the paper sees accuracy *rise* with Ω on Lastfm (the
candidate set shrinks as Ω grows) and *fall* on Gowalla (the strong
recency effect: the easiest targets leave the evaluation). At this
reproduction's candidate-set scale (~20-30 distinct items per window vs
the paper's up to 90), the mechanical shrinkage dominates both datasets,
so only the Lastfm half of the crossover is asserted; the Gowalla trend
is printed and recorded as a documented deviation (EXPERIMENTS.md §9).
"""


def test_bench_fig11(benchmark, run_artifact):
    result = benchmark.pedantic(
        lambda: run_artifact("fig11"), rounds=1, iterations=1
    )
    gowalla = result.series["Gowalla-like / MaAP@10 vs Ω (S=10)"]
    lastfm = result.series["Lastfm-like / MaAP@10 vs Ω (S=10)"]
    gowalla_trend = gowalla[-1][1] - gowalla[0][1]
    lastfm_trend = lastfm[-1][1] - lastfm[0][1]
    print(f"\nΩ-trend MaAP@10 (Ω=5 → Ω=40): Gowalla-like {gowalla_trend:+.4f}, "
          f"Lastfm-like {lastfm_trend:+.4f} (paper: Gowalla falls, Lastfm rises)")
    assert lastfm_trend > 0, f"Lastfm-like should rise with Ω ({lastfm_trend:+.3f})"
