"""Bench: regenerate Fig 13 (online recommendation time per instance).

Shape checks: the expensive models (Survival with its O(history) scan,
TS-PPR with per-candidate feature extraction, DYRC with per-candidate
recency ranking) cost several times the cheap one-pass baselines
(Random/Pop). At the paper's ~17k-event histories Survival dominates
everything by orders of magnitude; at this bench's ~300-event histories
Survival and TS-PPR are of the same magnitude, so only the
cheap-vs-expensive separation is asserted (the full-scale ordering is
recorded in EXPERIMENTS.md).
"""


def _ms(rows, dataset, method):
    for row in rows:
        if row["Data set"] == dataset and row["Method"] == method:
            return row["Mean time (ms)"]
    raise KeyError((dataset, method))


def test_bench_fig13(benchmark, run_artifact):
    result = benchmark.pedantic(
        lambda: run_artifact("fig13"), rounds=1, iterations=1
    )
    rows = result.rows
    for dataset in ("Gowalla-like", "Lastfm-like"):
        survival = _ms(rows, dataset, "Survival")
        tsppr = _ms(rows, dataset, "TS-PPR")
        pop = _ms(rows, dataset, "Pop")
        random_ms = _ms(rows, dataset, "Random")
        slowest = max(
            _ms(rows, dataset, m)
            for m in ("Random", "Pop", "Recency", "FPMC", "Survival",
                      "DYRC", "TS-PPR")
        )
        # The expensive methods separate clearly from the one-pass
        # baselines; Survival sits at or near the top.
        assert survival > 2.0 * pop
        assert survival > 2.0 * random_ms
        assert survival > 0.6 * slowest
        assert pop < tsppr
        assert random_ms < tsppr
