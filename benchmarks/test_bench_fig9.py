"""Bench: regenerate Fig 9 (sensitivity to latent dimension K).

Shape check: on the Gowalla-like data accuracy does not keep improving
past K = 40 by much (the paper's saturation), and tiny K is not better
than the default.
"""


def test_bench_fig9(benchmark, run_artifact):
    result = benchmark.pedantic(
        lambda: run_artifact("fig9"), rounds=1, iterations=1
    )
    points = dict(result.series["Gowalla-like / MaAP@10 vs K"])
    assert set(points) == {5, 10, 20, 40, 80}
    # Saturation: K=80 gains little over K=40.
    assert points[80] <= points[40] + 0.05
