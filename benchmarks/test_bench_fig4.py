"""Bench: regenerate Fig 4 (repeat counts by feature rank).

Shape check: for IP / IR / DF the rank-1..5 mass dominates ranks 6..20
(the paper's decreasing curves), and the Gowalla-like curves are steeper
than the Lastfm-like ones.
"""


def _top_share(points, k=5):
    counts = [count for _, count in points]
    total = sum(counts)
    return sum(counts[:k]) / total if total else 0.0


def test_bench_fig4(benchmark, run_artifact):
    result = benchmark.pedantic(
        lambda: run_artifact("fig4"), rounds=1, iterations=1
    )
    assert len(result.series) == 8
    for code in ("IP", "IR", "DF"):
        gowalla = result.series[f"Gowalla-like / {code}"]
        lastfm = result.series[f"Lastfm-like / {code}"]
        # Decreasing-curve shape: the top 5 of 20 ranks are heavily
        # over-represented relative to the uniform 25%.
        assert _top_share(gowalla) > 0.4
        assert _top_share(lastfm) > 0.28
        # Gowalla-like is the steeper (more discriminative) dataset.
        assert _top_share(gowalla) > _top_share(lastfm)
