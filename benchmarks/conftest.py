"""Benchmark-suite configuration.

Every benchmark regenerates one paper artifact at the *fast* scale (the
shapes of the full-scale run are preserved; wall-clock stays in minutes)
and prints the resulting rows/series so a benchmark run doubles as an
evidence run. ``benchmark.pedantic(rounds=1, iterations=1)`` is used
throughout: these are end-to-end experiment timings, not microbenchmarks,
and one round is what the paper's grid costs.

The experiment-level caches in :mod:`repro.experiments.common` are
process-wide, so fig5/fig6/table3 share a single training run when the
suite runs in one pytest session.

Perf trajectory: speed-guard benchmarks record their measurements
through the :func:`bench_record` fixture; at session end each group is
written as machine-readable JSON next to this file — ``BENCH_training.json``
for the training-engine guard and ``BENCH_engine.json`` for the scoring
engine — so the numbers can be compared across PRs.
"""

import json
import platform
from pathlib import Path
from typing import Dict, List

import numpy as np
import pytest

from repro.experiments.common import FAST_SCALE
from repro.experiments.registry import run_experiment

#: Measurements grouped by output file stem, e.g. ``{"training": {...}}``.
_BENCH_RESULTS = {}


class LoadGenerator:
    """Deterministic arrival processes shared by the serving/cluster benches.

    Latency guards are only comparable when every mode replays the
    *same* arrival schedule, so the generators are seeded and pure: the
    serving bench feeds both batching modes one schedule from
    :meth:`bursty_times`, and the cluster benches pace their client
    threads with :meth:`poisson_gaps` instead of ad-hoc tight loops.
    """

    @staticmethod
    def poisson_gaps(n: int, rate_hz: float, seed: int) -> np.ndarray:
        """``n`` exponential inter-arrival gaps (seconds) at ``rate_hz``."""
        rng = np.random.default_rng(seed)
        return rng.exponential(1.0 / rate_hz, size=n)

    @staticmethod
    def bursty_times(
        n: int,
        *,
        seed: int,
        calm_rate_hz: float,
        burst_size: int,
        calm_between: int,
    ) -> np.ndarray:
        """Absolute arrival times of a bursty (Markov-modulated) process.

        Alternates a calm phase — ``calm_between`` arrivals with
        exponential gaps at ``calm_rate_hz`` — with a burst phase of
        ``burst_size`` simultaneous arrivals. This is the adversarial
        shape for drain-then-refill batching: bursts overwhelm one
        batch window while calm singles pay the full straggler wait.
        """
        rng = np.random.default_rng(seed)
        times: List[float] = []
        t = 0.0
        while len(times) < n:
            for _ in range(calm_between):
                t += rng.exponential(1.0 / calm_rate_hz)
                times.append(t)
                if len(times) >= n:
                    break
            if len(times) >= n:
                break
            t += rng.exponential(1.0 / calm_rate_hz)
            times.extend([t] * min(burst_size, n - len(times)))
        return np.asarray(times[:n], dtype=np.float64)

    @staticmethod
    def percentiles_ms(latencies) -> Dict[str, float]:
        """p50/p95/p99 of a latency list (seconds in, milliseconds out)."""
        values = np.asarray(latencies, dtype=np.float64) * 1e3
        return {
            "p50_ms": round(float(np.percentile(values, 50)), 3),
            "p95_ms": round(float(np.percentile(values, 95)), 3),
            "p99_ms": round(float(np.percentile(values, 99)), 3),
        }


@pytest.fixture(scope="session")
def loadgen():
    """The shared arrival-process/latency-summary toolbox."""
    return LoadGenerator


@pytest.fixture(scope="session")
def fast_scale():
    return FAST_SCALE


@pytest.fixture(scope="session")
def run_artifact():
    """Run a registered experiment at fast scale and print its output."""

    def _run(experiment_id):
        result = run_experiment(experiment_id, FAST_SCALE)
        print()
        print(result.render())
        return result

    return _run


@pytest.fixture(scope="session")
def bench_record():
    """Record one benchmark measurement for the JSON trajectory files.

    ``bench_record(group, name, **fields)`` files ``fields`` under
    ``BENCH_<group>.json`` at key ``name``. Values must be
    JSON-serializable (numbers/strings/lists/dicts).
    """

    def _record(group, name, **fields):
        _BENCH_RESULTS.setdefault(group, {})[name] = fields

    return _record


def pytest_sessionfinish(session, exitstatus):
    """Write each recorded group as ``benchmarks/BENCH_<group>.json``."""
    if not _BENCH_RESULTS:
        return
    out_dir = Path(__file__).resolve().parent
    for group, results in sorted(_BENCH_RESULTS.items()):
        payload = {
            "group": group,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "results": results,
        }
        path = out_dir / f"BENCH_{group}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    _BENCH_RESULTS.clear()
