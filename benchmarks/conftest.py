"""Benchmark-suite configuration.

Every benchmark regenerates one paper artifact at the *fast* scale (the
shapes of the full-scale run are preserved; wall-clock stays in minutes)
and prints the resulting rows/series so a benchmark run doubles as an
evidence run. ``benchmark.pedantic(rounds=1, iterations=1)`` is used
throughout: these are end-to-end experiment timings, not microbenchmarks,
and one round is what the paper's grid costs.

The experiment-level caches in :mod:`repro.experiments.common` are
process-wide, so fig5/fig6/table3 share a single training run when the
suite runs in one pytest session.

Perf trajectory: speed-guard benchmarks record their measurements
through the :func:`bench_record` fixture; at session end each group is
written as machine-readable JSON next to this file — ``BENCH_training.json``
for the training-engine guard and ``BENCH_engine.json`` for the scoring
engine — so the numbers can be compared across PRs.
"""

import json
import platform
from pathlib import Path

import pytest

from repro.experiments.common import FAST_SCALE
from repro.experiments.registry import run_experiment
# The arrival-process toolbox moved into the library so the autotuner's
# measured validation paces candidates exactly as the benches do; the
# name is re-exported here because the benches (and their history) use it.
from repro.tuning.load import LoadGenerator

__all__ = ["LoadGenerator"]

#: Measurements grouped by output file stem, e.g. ``{"training": {...}}``.
_BENCH_RESULTS = {}


@pytest.fixture(scope="session")
def loadgen():
    """The shared arrival-process/latency-summary toolbox."""
    return LoadGenerator


@pytest.fixture(scope="session")
def fast_scale():
    return FAST_SCALE


@pytest.fixture(scope="session")
def run_artifact():
    """Run a registered experiment at fast scale and print its output."""

    def _run(experiment_id):
        result = run_experiment(experiment_id, FAST_SCALE)
        print()
        print(result.render())
        return result

    return _run


@pytest.fixture(scope="session")
def bench_record():
    """Record one benchmark measurement for the JSON trajectory files.

    ``bench_record(group, name, **fields)`` files ``fields`` under
    ``BENCH_<group>.json`` at key ``name``. Values must be
    JSON-serializable (numbers/strings/lists/dicts).
    """

    def _record(group, name, **fields):
        _BENCH_RESULTS.setdefault(group, {})[name] = fields

    return _record


def pytest_sessionfinish(session, exitstatus):
    """Write each recorded group as ``benchmarks/BENCH_<group>.json``."""
    if not _BENCH_RESULTS:
        return
    out_dir = Path(__file__).resolve().parent
    for group, results in sorted(_BENCH_RESULTS.items()):
        payload = {
            "group": group,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "results": results,
        }
        path = out_dir / f"BENCH_{group}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    _BENCH_RESULTS.clear()
