"""Benchmark-suite configuration.

Every benchmark regenerates one paper artifact at the *fast* scale (the
shapes of the full-scale run are preserved; wall-clock stays in minutes)
and prints the resulting rows/series so a benchmark run doubles as an
evidence run. ``benchmark.pedantic(rounds=1, iterations=1)`` is used
throughout: these are end-to-end experiment timings, not microbenchmarks,
and one round is what the paper's grid costs.

The experiment-level caches in :mod:`repro.experiments.common` are
process-wide, so fig5/fig6/table3 share a single training run when the
suite runs in one pytest session.
"""

import pytest

from repro.experiments.common import FAST_SCALE
from repro.experiments.registry import run_experiment


@pytest.fixture(scope="session")
def fast_scale():
    return FAST_SCALE


@pytest.fixture(scope="session")
def run_artifact():
    """Run a registered experiment at fast scale and print its output."""

    def _run(experiment_id):
        result = run_experiment(experiment_id, FAST_SCALE)
        print()
        print(result.render())
        return result

    return _run
