"""Bench: cluster scaling (1/2/4 shards) and tail latency under restart.

Two measurements, both recorded to ``BENCH_cluster.json``:

* **Scaling** — aggregate request throughput with smart clients talking
  straight to the owning shards (ring-routed, no router hop) at 1, 2,
  and 4 worker processes. On a machine with enough cores the 4-shard
  configuration must reach **>= 3x** the single-shard throughput
  (near-linear); on smaller machines (CI containers pinned to a core or
  two) the numbers are recorded but the ratio is not asserted — worker
  processes cannot scale past the physical cores they share.
* **Restart tail** — client-observed p50/p95/p99 through the router
  while one of 4 shards is SIGKILLed mid-run and restarted from its
  WAL. The client threads pace their requests with the shared seeded
  Poisson process (``loadgen.poisson_gaps``) instead of a tight loop,
  so the percentiles describe a fixed offered load — restart stalls
  show up as tail, not as throughput collapse. No request may error:
  reads degrade, writes are held; the tail quantifies what that grace
  costs.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, List

import pytest

from repro.cluster import ClusterRouter, RUNNING, ShardSupervisor
from repro.config import WindowConfig
from repro.data.split import temporal_split
from repro.models.recency import RecencyRecommender
from repro.resilience.faults import ProcessFaultInjector
from repro.serving import ServiceConfig, ServingClient
from repro.synth.gowalla import generate_gowalla

pytestmark = pytest.mark.bench

BENCH_WINDOW = WindowConfig(window_size=25, min_gap=2)
SHARD_COUNTS = (1, 2, 4)
N_THREADS = 4
MEASURE_S = 2.5
#: Per-thread Poisson rate for the restart-tail measurement: 4 threads
#: at 60 Hz offer ~240 ingest+recommend pairs/s — well under cluster
#: capacity, so the recorded percentiles isolate the restart's cost.
RESTART_PACE_HZ = 60.0
#: Near-linear scaling needs real parallelism: 4 workers + supervisor +
#: the driving client want ~5 cores before the assertion is meaningful.
MIN_CORES_FOR_ASSERT = 5


@pytest.fixture(scope="module")
def bench_split():
    return temporal_split(
        generate_gowalla(random_state=47, user_factor=0.5, length_factor=0.6)
    )


@pytest.fixture(scope="module")
def bench_model(bench_split):
    return RecencyRecommender().fit(bench_split, BENCH_WINDOW)


def make_supervisor(split, model, tmp_path, n_shards) -> ShardSupervisor:
    config = ServiceConfig(window=BENCH_WINDOW, n_items=split.n_items)
    return ShardSupervisor(
        split,
        model,
        config,
        n_shards=n_shards,
        run_dir=tmp_path / f"cluster{n_shards}",
        heartbeat_interval_s=0.1,
        heartbeat_timeout_s=0.5,
        max_missed_heartbeats=3,
    )


def drive_direct(split, supervisor, duration_s) -> float:
    """Smart-client load: each thread routes by ring, no router hop.

    Returns aggregate completed requests per second (ingest+recommend
    pairs both count — they are both served requests).
    """
    users = list(range(split.n_users))
    counts = [0] * N_THREADS
    stop = threading.Event()

    def worker(index: int) -> None:
        mine = users[index::N_THREADS]
        clients: Dict[str, ServingClient] = {
            name: ServingClient(supervisor.url_of(name), timeout=30.0)
            for name in supervisor.shard_names()
        }
        round_no = 0
        while not stop.is_set():
            for user in mine:
                client = clients[supervisor.ring.owner(user)]
                client.ingest(user, (user * 11 + round_no) % split.n_items)
                client.recommend(user, k=10)
                counts[index] += 2
            round_no += 1

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(N_THREADS)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    time.sleep(duration_s)
    stop.set()
    for thread in threads:
        thread.join(timeout=120.0)
    elapsed = time.perf_counter() - start
    return sum(counts) / elapsed


def test_bench_cluster_scaling(bench_split, bench_model, tmp_path, bench_record):
    throughput: Dict[int, float] = {}
    for n_shards in SHARD_COUNTS:
        supervisor = make_supervisor(
            bench_split, bench_model, tmp_path, n_shards
        )
        supervisor.start()
        try:
            throughput[n_shards] = drive_direct(
                bench_split, supervisor, MEASURE_S
            )
        finally:
            supervisor.close()

    scaling = throughput[4] / throughput[1]
    cores = os.cpu_count() or 1
    report = "; ".join(
        f"{n} shard(s): {throughput[n]:.0f} req/s" for n in SHARD_COUNTS
    )
    report += f"; 4-shard scaling {scaling:.2f}x on {cores} core(s)"
    print()
    print(report)

    for n_shards in SHARD_COUNTS:
        bench_record(
            "cluster",
            f"shards_{n_shards}",
            requests_per_s=round(throughput[n_shards], 1),
            threads=N_THREADS,
            measure_s=MEASURE_S,
        )
    bench_record(
        "cluster",
        "scaling",
        speedup_4x=round(scaling, 3),
        cores=cores,
        asserted=cores >= MIN_CORES_FOR_ASSERT,
    )

    if cores >= MIN_CORES_FOR_ASSERT:
        assert scaling >= 3.0, report


def test_bench_cluster_restart_tail(
    bench_split, bench_model, tmp_path, bench_record, loadgen
):
    """Tail through the router while a shard dies and replays its WAL."""
    supervisor = make_supervisor(bench_split, bench_model, tmp_path / "r", 4)
    supervisor.start()
    router = ClusterRouter(
        supervisor, port=0, event_retry_deadline_s=120.0
    ).start()
    users = list(range(bench_split.n_users))
    latencies: List[float] = []
    lock = threading.Lock()
    errors: List[str] = []
    degraded = [0]
    stop = threading.Event()

    def worker(index: int) -> None:
        client = ServingClient(router.url, timeout=60.0)
        mine = users[index::N_THREADS]
        gaps = loadgen.poisson_gaps(4096, RESTART_PACE_HZ, seed=4000 + index)
        sent = 0
        round_no = 0
        try:
            while not stop.is_set():
                for user in mine:
                    time.sleep(gaps[sent % len(gaps)])
                    sent += 1
                    if stop.is_set():
                        return
                    begin = time.perf_counter()
                    client.ingest(
                        user, (user * 11 + round_no) % bench_split.n_items
                    )
                    reply = client.recommend(user, k=10)
                    took = time.perf_counter() - begin
                    with lock:
                        latencies.append(took)
                        if reply["degraded"]:
                            degraded[0] += 1
                round_no += 1
        except Exception as exc:  # noqa: BLE001 - the assertion target
            errors.append(repr(exc))

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(N_THREADS)
    ]
    try:
        for thread in threads:
            thread.start()
        time.sleep(1.0)
        victim = supervisor.ring.owner(users[0])
        ProcessFaultInjector().kill(supervisor.pid_of(victim))
        time.sleep(3.0)  # ride through detection, replay, readmission
        stop.set()
        for thread in threads:
            thread.join(timeout=300.0)

        assert errors == [], f"requests errored during restart: {errors}"
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if supervisor.states()[victim] == RUNNING:
                break
            time.sleep(0.1)
        assert supervisor.states()[victim] == RUNNING
        assert supervisor.restart_counts()[victim] >= 1

        tail = loadgen.percentiles_ms(latencies)
        report = (
            f"restart tail: {len(latencies)} ingest+recommend pairs at "
            f"~{N_THREADS * RESTART_PACE_HZ:.0f} pairs/s offered, "
            f"p50 {tail['p50_ms']}ms, p95 {tail['p95_ms']}ms, "
            f"p99 {tail['p99_ms']}ms, {degraded[0]} degraded answer(s)"
        )
        print()
        print(report)
        bench_record(
            "cluster",
            "restart_tail",
            pairs=len(latencies),
            pace_hz=RESTART_PACE_HZ,
            threads=N_THREADS,
            degraded_answers=degraded[0],
            shards=4,
            **tail,
        )
    finally:
        stop.set()
        router.close()
        supervisor.close()
